package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"syncsim/internal/machine"
	"syncsim/internal/trace"
	"syncsim/internal/workload"
)

// fakeProgram is a synthetic workload: per CPU, `pairs` critical sections
// on one shared lock with a shared-heap write inside. It is deterministic
// in its params and cheap to generate, so tests control cost precisely.
type fakeProgram struct {
	name     string
	ncpu     int
	pairs    int
	genCalls *atomic.Int32
	genErr   error
	genDelay time.Duration
}

func (p *fakeProgram) Name() string     { return p.name }
func (p *fakeProgram) DefaultNCPU() int { return p.ncpu }

func (p *fakeProgram) Generate(q workload.Params) (*trace.Set, error) {
	if p.genCalls != nil {
		p.genCalls.Add(1)
	}
	if p.genDelay > 0 {
		time.Sleep(p.genDelay)
	}
	if p.genErr != nil {
		return nil, p.genErr
	}
	q = q.WithDefaults(p.ncpu)
	pairs := int(float64(p.pairs) * q.Scale)
	if pairs < 1 {
		pairs = 1
	}
	cpus := make([][]trace.Event, q.NCPU)
	for i := range cpus {
		evs := make([]trace.Event, 0, 5*pairs)
		for j := 0; j < pairs; j++ {
			evs = append(evs,
				trace.Lock(0, 0xF0000000),
				trace.Exec(20),
				trace.Write(0x80000000+uint32(16*(j%8))),
				trace.Unlock(0, 0xF0000000),
				trace.Exec(10),
			)
		}
		cpus[i] = evs
	}
	return trace.BufferSet(p.name, cpus), nil
}

func simTasks(prog workload.Program, labels ...string) []Task {
	cfg := machine.DefaultConfig()
	tasks := make([]Task, len(labels))
	for i, l := range labels {
		c := cfg
		if i%2 == 1 {
			c.Memory.AccessTime = 3 + uint64(i) // distinct configs, same trace
		}
		tasks[i] = Task{Program: prog, Params: workload.Params{Scale: 1, Seed: 1},
			Label: l, Config: c, Metrics: true}
	}
	return tasks
}

func TestKeyCanonicalisation(t *testing.T) {
	p := &fakeProgram{name: "Fake", ncpu: 4, pairs: 10}
	k1 := KeyFor(p, workload.Params{})
	k2 := KeyFor(p, workload.Params{NCPU: 4, Scale: 1, Seed: 0})
	if k1 != k2 {
		t.Errorf("default params key %+v != explicit key %+v", k1, k2)
	}
	k3 := KeyFor(p, workload.Params{NCPU: 8})
	if k1 == k3 {
		t.Error("different NCPU must yield different keys")
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	var calls atomic.Int32
	p := &fakeProgram{name: "Fake", ncpu: 2, pairs: 50, genCalls: &calls}
	eng := New(Config{Workers: 2})
	results, rep, err := eng.Run(context.Background(), simTasks(p, "a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("Generate called %d times, want exactly 1 (trace memoised)", got)
	}
	if rep.CacheMisses != 1 || rep.CacheHits != 2 {
		t.Errorf("cache accounting: %d misses / %d hits, want 1/2", rep.CacheMisses, rep.CacheHits)
	}
	if rate := rep.CacheHitRate(); rate < 2.0/3.0-1e-9 {
		t.Errorf("hit rate %.3f, want ≥ 2/3", rate)
	}
	if rep.Tasks != 3 || rep.Workers != 2 {
		t.Errorf("report shape: %d tasks / %d workers", rep.Tasks, rep.Workers)
	}
	hits := 0
	for _, r := range results {
		if r.Result == nil || r.Result.RunTime == 0 {
			t.Fatal("missing simulation result")
		}
		if r.Report.Runs != 1 {
			t.Errorf("per-task report runs = %d", r.Report.Runs)
		}
		hits += r.Report.CacheHits
	}
	if hits != 2 {
		t.Errorf("per-task cache hits sum = %d, want 2", hits)
	}
}

func TestDistinctParamsDistinctTraces(t *testing.T) {
	var calls atomic.Int32
	p := &fakeProgram{name: "Fake", ncpu: 2, pairs: 40, genCalls: &calls}
	cfg := machine.DefaultConfig()
	tasks := []Task{
		{Program: p, Params: workload.Params{Scale: 1, Seed: 1}, Label: "s1", Config: cfg},
		{Program: p, Params: workload.Params{Scale: 1, Seed: 2}, Label: "s2", Config: cfg},
		{Program: p, Params: workload.Params{Scale: 1, Seed: 1, NCPU: 4}, Label: "n4", Config: cfg},
	}
	eng := New(Config{})
	_, rep, err := eng.Run(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("Generate called %d times, want 3 (distinct keys)", got)
	}
	if rep.CacheHits != 0 || rep.CacheMisses != 3 {
		t.Errorf("cache accounting: %d/%d, want 0 hits / 3 misses", rep.CacheHits, rep.CacheMisses)
	}
}

func TestSingleFlightGeneration(t *testing.T) {
	var calls atomic.Int32
	p := &fakeProgram{name: "Fake", ncpu: 2, pairs: 20, genCalls: &calls,
		genDelay: 20 * time.Millisecond}
	eng := New(Config{Workers: 8})
	labels := make([]string, 8)
	for i := range labels {
		labels[i] = fmt.Sprintf("t%d", i)
	}
	_, _, err := eng.Run(context.Background(), simTasks(p, labels...))
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("concurrent identical tasks generated %d times, want 1 (single-flight)", got)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	p := &fakeProgram{name: "Fake", ncpu: 4, pairs: 200}
	baseline, _, err := New(Config{Workers: 1}).Run(context.Background(), simTasks(p, "a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, _, err := New(Config{Workers: workers}).Run(context.Background(), simTasks(p, "a", "b", "c", "d"))
		if err != nil {
			t.Fatal(err)
		}
		for i := range baseline {
			if got[i].Result.RunTime != baseline[i].Result.RunTime {
				t.Errorf("workers=%d task %d: run-time %d != sequential %d",
					workers, i, got[i].Result.RunTime, baseline[i].Result.RunTime)
			}
			if got[i].Result.Locks != baseline[i].Result.Locks {
				t.Errorf("workers=%d task %d: lock stats diverge", workers, i)
			}
			if got[i].Ideal != baseline[i].Ideal {
				t.Errorf("workers=%d task %d: ideal stats diverge", workers, i)
			}
		}
	}
}

func TestGenerationErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	p := &fakeProgram{name: "Fake", ncpu: 2, pairs: 10, genErr: sentinel}
	_, _, err := New(Config{Workers: 2}).Run(context.Background(), simTasks(p, "a", "b"))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestIdealOnlyTask(t *testing.T) {
	p := &fakeProgram{name: "Fake", ncpu: 2, pairs: 30}
	tasks := []Task{{Program: p, Params: workload.Params{Scale: 1}, Label: "ideal",
		IdealOnly: true, Metrics: true}}
	results, rep, err := New(Config{}).Run(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Result != nil {
		t.Error("ideal-only task produced a simulation result")
	}
	if results[0].Ideal.LockPairs == 0 {
		t.Error("ideal stats missing")
	}
	if rep.SimCycles != 0 {
		t.Errorf("ideal-only run simulated %d cycles", rep.SimCycles)
	}
}

func TestCancellationMidSuite(t *testing.T) {
	// A workload whose simulation runs for many seconds: cancellation must
	// interrupt the machine simulator mid-run, return promptly, and leak no
	// goroutines. The cancel fires once a worker reports it has entered the
	// simulate phase, so the test exercises the simulator's cancellation
	// polling rather than the (phase-boundary) checks in trace generation.
	p := &fakeProgram{name: "Fake", ncpu: 8, pairs: 20_000}
	before := runtime.NumGoroutine()

	simStarted := make(chan struct{})
	var simOnce sync.Once
	eng := New(Config{Workers: 4, Progress: func(format string, args ...any) {
		if strings.Contains(format, "simulating") {
			simOnce.Do(func() { close(simStarted) })
		}
	}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := eng.Run(ctx, simTasks(p, "a", "b", "c", "d", "e", "f"))
		done <- err
	}()

	select {
	case <-simStarted:
	case err := <-done:
		t.Fatalf("engine returned before simulation started: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("simulation never started")
	}
	cancelled := time.Now()
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine did not return within 5s of cancellation")
	}
	if elapsed := time.Since(cancelled); elapsed > 3*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	waitForGoroutines(t, before)
}

func TestPreCancelledContext(t *testing.T) {
	p := &fakeProgram{name: "Fake", ncpu: 2, pairs: 10}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	_, _, err := New(Config{Workers: 2}).Run(ctx, simTasks(p, "a", "b"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, before)
}

func TestProgressSerialised(t *testing.T) {
	// The progress callback appends to a plain slice; -race verifies the
	// engine serialises concurrent callers.
	var lines []string
	p := &fakeProgram{name: "Fake", ncpu: 2, pairs: 30}
	eng := New(Config{Workers: 4, Progress: func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}})
	_, _, err := eng.Run(context.Background(), simTasks(p, "a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	var generating, simulating int
	for _, l := range lines {
		switch {
		case strings.Contains(l, "generating"):
			generating++
		case strings.Contains(l, "simulating"):
			simulating++
		}
	}
	if generating != 1 {
		t.Errorf("generating lines = %d, want 1 (trace cached)", generating)
	}
	if simulating != 4 {
		t.Errorf("simulating lines = %d, want 4", simulating)
	}
}

func TestSharedCacheAcrossRuns(t *testing.T) {
	var calls atomic.Int32
	p := &fakeProgram{name: "Fake", ncpu: 2, pairs: 30, genCalls: &calls}
	cache := NewTraceCache()
	for i := 0; i < 3; i++ {
		eng := New(Config{Cache: cache})
		if _, _, err := eng.Run(context.Background(), simTasks(p, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("shared cache: Generate called %d times across runs, want 1", got)
	}
	if cache.Len() != 1 {
		t.Errorf("cache entries = %d, want 1", cache.Len())
	}
}

// waitForGoroutines polls until the goroutine count settles back to the
// pre-run level (a goleak-style check without the dependency).
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before run, %d after", before, runtime.NumGoroutine())
}
