package engine

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered at a worker or job boundary, converted
// into an ordinary error so one failing task cannot take down the pool,
// the daemon, or sibling jobs. The stack is captured at recovery time for
// the server log; transport layers must keep it off the wire and surface
// only an opaque incident ID.
type PanicError struct {
	// Job identifies the failing unit of work (task label, job key, …).
	Job string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: panic in job %q: %v", e.Job, e.Value)
}

// Recovered wraps a recovered panic value into a *PanicError, capturing
// the current goroutine's stack. Call it from a deferred recover handler:
//
//	defer func() {
//		if v := recover(); v != nil {
//			err = Recovered(job, v)
//		}
//	}()
func Recovered(job string, v any) *PanicError {
	return &PanicError{Job: job, Value: v, Stack: debug.Stack()}
}
