package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"syncsim/internal/machine"
	"syncsim/internal/trace"
	"syncsim/internal/workload"
)

// poisonedCursor is a rewindable trace cursor that panics after a fixed
// number of events — a poisoned trace discovered mid-speculation. The
// canonical cursor handed to the ideal analyser is disarmed (left < 0);
// only the per-task clones the engine simulates from are armed, so the
// panic fires inside the machine's parallel scheduler, not during
// generation or analysis.
type poisonedCursor struct {
	inner *trace.Buffer
	left  int // events to yield before panicking; negative = disarmed
}

func (p *poisonedCursor) Next() (trace.Event, bool) {
	if p.left == 0 {
		panic("poisonedCursor: poisoned event")
	}
	if p.left > 0 {
		p.left--
	}
	return p.inner.Next()
}

func (p *poisonedCursor) Mark() trace.Mark  { return p.inner.Mark() }
func (p *poisonedCursor) Seek(m trace.Mark) { p.inner.Seek(m) }
func (p *poisonedCursor) Rewind()           { p.inner.Rewind() }

func (p *poisonedCursor) CloneSource() trace.Source {
	return &poisonedCursor{inner: trace.NewBuffer(p.inner.Events), left: 1}
}

// poisonedParProgram generates a contended workload whose per-task trace
// clones panic on their second event. With the parallel scheduler every
// CPU is speculatively leasable at cycle 0, so the pool pre-dispatches
// the advances and the panic lands inside a worker goroutine.
type poisonedParProgram struct{ ncpu int }

func (p *poisonedParProgram) Name() string     { return "poisoned-par" }
func (p *poisonedParProgram) DefaultNCPU() int { return p.ncpu }

func (p *poisonedParProgram) Generate(q workload.Params) (*trace.Set, error) {
	q = q.WithDefaults(p.ncpu)
	cpus := make([][]trace.Event, q.NCPU)
	for i := range cpus {
		private := 0x4000 + uint32(i)*0x100
		cpus[i] = []trace.Event{
			trace.Exec(uint32(1 + i%7)), // consumed by the pre-dispatched advance
			trace.Read(0x1000),          // second Next: the poisoned one
			trace.Write(private),
			trace.Lock(0, 0x9000),
			trace.Write(0x1000),
			trace.Unlock(0, 0x9000),
			trace.Barrier(0),
		}
	}
	set := trace.BufferSet(p.Name(), cpus)
	for i, src := range set.Sources {
		set.Sources[i] = &poisonedCursor{inner: src.(*trace.Buffer), left: -1}
	}
	return set, nil
}

func parallelCfg(workers int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Sched = machine.SchedParallel
	cfg.Workers = workers
	return cfg
}

// TestParallelSchedPanicIsolation: a panic inside one of the parallel
// scheduler's pool workers crosses two pool boundaries — the machine's
// speculation pool and the engine's task pool — and must still arrive as
// an ordinary *PanicError naming the job, with both pools torn down
// (leakCheck) and the engine serviceable for further parallel runs.
func TestParallelSchedPanicIsolation(t *testing.T) {
	leakCheck(t)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	prog := &poisonedParProgram{ncpu: 8}
	eng := New(Config{Workers: 2})
	task := Task{Program: prog, Params: workload.Params{Scale: 1, Seed: 1},
		Label: "par", Config: parallelCfg(4), Metrics: true}
	_, _, err := eng.Run(context.Background(), []Task{task})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	msg := fmt.Sprint(pe.Value)
	if !strings.Contains(msg, "parallel advance") || !strings.Contains(msg, "poisoned") {
		t.Errorf("panic value %q does not carry the scheduler-worker context", msg)
	}
	if !strings.Contains(pe.Job, "poisoned-par") {
		t.Errorf("job = %q, want it to name the workload", pe.Job)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}

	// The engine still executes healthy parallel-scheduled tasks.
	good := &fakeProgram{name: "fine-par", ncpu: 4, pairs: 8}
	gt := Task{Program: good, Params: workload.Params{Scale: 1, Seed: 1},
		Label: "par", Config: parallelCfg(4), Metrics: true}
	results, _, err := eng.Run(context.Background(), []Task{gt})
	if err != nil {
		t.Fatalf("engine unusable after contained scheduler panic: %v", err)
	}
	if results[0].Result == nil || results[0].Result.RunTime == 0 {
		t.Fatal("no result from post-panic parallel run")
	}
}

// TestParallelSchedSoak: a race-enabled soak of the parallel scheduler
// THROUGH the engine — per-run speculation workers composing with the
// engine's own task pool (suite -j) — across several seeds. Every
// parallel result must be bit-identical to the calendar result for the
// same seed, and the pools must not leak.
func TestParallelSchedSoak(t *testing.T) {
	leakCheck(t)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	prog := &fakeProgram{name: "soak", ncpu: 6, pairs: 12}
	serial := machine.DefaultConfig()
	var tasks []Task
	for seed := int64(1); seed <= 4; seed++ {
		p := workload.Params{Scale: 1, Seed: seed}
		tasks = append(tasks,
			Task{Program: prog, Params: p, Label: fmt.Sprintf("cal/%d", seed), Config: serial},
			Task{Program: prog, Params: p, Label: fmt.Sprintf("par/%d", seed), Config: parallelCfg(4)},
		)
	}
	eng := New(Config{Workers: 3}) // engine pool and speculation pools overlap
	results, _, err := eng.Run(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(results); i += 2 {
		cal, par := *results[i].Result, *results[i+1].Result
		cal.Config, par.Config = machine.Config{}, machine.Config{}
		cal.Sched, par.Sched = machine.SchedStats{}, machine.SchedStats{}
		if !reflect.DeepEqual(cal, par) {
			t.Errorf("%s vs %s: parallel result diverges from calendar",
				tasks[i].Label, tasks[i+1].Label)
		}
	}
}
