package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"syncsim/internal/trace"
	"syncsim/internal/workload"
)

// gatedProgram wraps fakeProgram so a test can hold Generate open: each call
// signals entered, then blocks until release is closed. This pins a fill in
// flight while other lookups for the same key arrive.
type gatedProgram struct {
	fakeProgram
	entered chan struct{} // one signal per Generate entry (buffered)
	release chan struct{} // closed to let Generate proceed
}

func (p *gatedProgram) Generate(q workload.Params) (*trace.Set, error) {
	p.entered <- struct{}{}
	<-p.release
	return p.fakeProgram.Generate(q)
}

func newGatedProgram(calls *atomic.Int32) *gatedProgram {
	return &gatedProgram{
		fakeProgram: fakeProgram{name: "Gated", ncpu: 2, pairs: 10, genCalls: calls},
		entered:     make(chan struct{}, 4),
		release:     make(chan struct{}),
	}
}

// TestCacheCapLRU is the regression test for the unbounded-growth bug:
// before the capacity option, entries were only evicted on aborted fills,
// so a long-lived process churning through distinct keys grew without
// bound. Under churn Len() must never exceed the cap, old keys must be
// displaced LRU-first, and a re-lookup of a recently used key must hit.
func TestCacheCapLRU(t *testing.T) {
	var calls atomic.Int32
	p := &fakeProgram{name: "Churn", ncpu: 2, pairs: 4, genCalls: &calls}
	const cap = 3
	c := NewTraceCacheCap(cap)
	if c.Cap() != cap {
		t.Fatalf("Cap() = %d, want %d", c.Cap(), cap)
	}
	ctx := context.Background()

	for seed := int64(1); seed <= 10; seed++ {
		if _, _, _, err := c.Get(ctx, p, workload.Params{Scale: 1, Seed: seed}, nil); err != nil {
			t.Fatalf("Get(seed %d): %v", seed, err)
		}
		if n := c.Len(); n > cap {
			t.Fatalf("after %d inserts Len() = %d, exceeds cap %d", seed, n, cap)
		}
	}
	if got := calls.Load(); got != 10 {
		t.Fatalf("Generate called %d times, want 10 (all distinct keys)", got)
	}

	// Seeds 8..10 are the residents. Touch 8 so it becomes most recent,
	// then insert a new key: 9 is now the LRU and must be the one evicted.
	if _, _, info, err := c.Get(ctx, p, workload.Params{Scale: 1, Seed: 8}, nil); err != nil || !info.Hit {
		t.Fatalf("Get(seed 8) = hit=%v err=%v, want cache hit", info.Hit, err)
	}
	if _, _, _, err := c.Get(ctx, p, workload.Params{Scale: 1, Seed: 11}, nil); err != nil {
		t.Fatalf("Get(seed 11): %v", err)
	}
	if _, _, info, err := c.Get(ctx, p, workload.Params{Scale: 1, Seed: 8}, nil); err != nil || !info.Hit {
		t.Fatalf("recently used seed 8 was evicted (hit=%v err=%v)", info.Hit, err)
	}
	if _, _, info, err := c.Get(ctx, p, workload.Params{Scale: 1, Seed: 9}, nil); err != nil || info.Hit {
		t.Fatalf("LRU seed 9 should have been evicted (hit=%v err=%v)", info.Hit, err)
	}
	if n := c.Len(); n > cap {
		t.Fatalf("final Len() = %d, exceeds cap %d", n, cap)
	}

	st := c.Stats()
	if st.Evictions == 0 || st.Misses == 0 || st.Hits == 0 {
		t.Errorf("Stats() = %+v, want non-zero hits, misses and evictions", st)
	}
	if st.Len != c.Len() || st.Cap != cap {
		t.Errorf("Stats() occupancy %+v inconsistent with Len %d / Cap %d", st, c.Len(), cap)
	}
}

// TestCacheCapConcurrentChurn hammers a small cache from several goroutines
// over an overlapping key range and asserts the bound is never exceeded.
func TestCacheCapConcurrentChurn(t *testing.T) {
	p := &fakeProgram{name: "ChurnRace", ncpu: 2, pairs: 4}
	const cap = 2
	c := NewTraceCacheCap(cap)
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				seed := int64((g + i) % 7)
				if _, _, _, err := c.Get(ctx, p, workload.Params{Scale: 1, Seed: seed}, nil); err != nil {
					t.Errorf("Get(seed %d): %v", seed, err)
					return
				}
				if n := c.Len(); n > cap {
					t.Errorf("Len() = %d, exceeds cap %d", n, cap)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheCrossCancellation is the regression test for the single-flight
// poisoning bug: a waiter blocked on a concurrent fill used to inherit the
// FILLER's ctx.Err() when the filler was cancelled mid-generation. The
// waiter's context is alive, so it must retry the lookup and succeed.
func TestCacheCrossCancellation(t *testing.T) {
	var calls atomic.Int32
	p := newGatedProgram(&calls)
	c := NewTraceCache()
	params := workload.Params{Scale: 1, Seed: 1}

	fillerCtx, cancelFiller := context.WithCancel(context.Background())
	defer cancelFiller()
	fillerErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.Get(fillerCtx, p, params, nil)
		fillerErr <- err
	}()
	<-p.entered // the filler is inside Generate; its entry is published

	var waiterInfo CacheInfo
	waiterErr := make(chan error, 1)
	go func() {
		_, _, info, err := c.Get(context.Background(), p, params, nil)
		waiterInfo = info
		waiterErr <- err
	}()
	// No event marks "waiter parked on the entry"; the sleep just makes that
	// interleaving overwhelmingly likely. The retry path is correct either
	// way — if the waiter arrives after the eviction it simply fills fresh.
	time.Sleep(20 * time.Millisecond)

	cancelFiller()
	close(p.release)

	if err := <-fillerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("filler err = %v, want its own context.Canceled", err)
	}
	if err := <-waiterErr; err != nil {
		t.Fatalf("waiter with a live context inherited the filler's cancellation: %v", err)
	}
	if waiterInfo.Hit {
		t.Error("waiter reported a cache hit; it must have regenerated after the aborted fill")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("Generate called %d times, want 2 (aborted fill + waiter's retry)", got)
	}
}

// TestCacheWaiterOwnCancellation checks the other half of the contract: a
// waiter whose OWN context is dead reports its own error and does not
// trigger a regeneration.
func TestCacheWaiterOwnCancellation(t *testing.T) {
	var calls atomic.Int32
	p := newGatedProgram(&calls)
	c := NewTraceCache()
	params := workload.Params{Scale: 1, Seed: 1}

	fillerCtx, cancelFiller := context.WithCancel(context.Background())
	defer cancelFiller()
	fillerErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.Get(fillerCtx, p, params, nil)
		fillerErr <- err
	}()
	<-p.entered

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.Get(waiterCtx, p, params, nil)
		waiterErr <- err
	}()
	time.Sleep(20 * time.Millisecond)

	cancelWaiter()
	cancelFiller()
	close(p.release)

	if err := <-fillerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("filler err = %v, want context.Canceled", err)
	}
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("Generate called %d times, want 1 (no retry for a dead waiter)", got)
	}
}
