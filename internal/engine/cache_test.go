package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"syncsim/internal/trace"
	"syncsim/internal/workload"
)

// gatedProgram wraps fakeProgram so a test can hold Generate open: each call
// signals entered, then blocks until release is closed. This pins a fill in
// flight while other lookups for the same key arrive.
type gatedProgram struct {
	fakeProgram
	entered chan struct{} // one signal per Generate entry (buffered)
	release chan struct{} // closed to let Generate proceed
}

func (p *gatedProgram) Generate(q workload.Params) (*trace.Set, error) {
	p.entered <- struct{}{}
	<-p.release
	return p.fakeProgram.Generate(q)
}

func newGatedProgram(calls *atomic.Int32) *gatedProgram {
	return &gatedProgram{
		fakeProgram: fakeProgram{name: "Gated", ncpu: 2, pairs: 10, genCalls: calls},
		entered:     make(chan struct{}, 4),
		release:     make(chan struct{}),
	}
}

// TestCacheCrossCancellation is the regression test for the single-flight
// poisoning bug: a waiter blocked on a concurrent fill used to inherit the
// FILLER's ctx.Err() when the filler was cancelled mid-generation. The
// waiter's context is alive, so it must retry the lookup and succeed.
func TestCacheCrossCancellation(t *testing.T) {
	var calls atomic.Int32
	p := newGatedProgram(&calls)
	c := NewTraceCache()
	params := workload.Params{Scale: 1, Seed: 1}

	fillerCtx, cancelFiller := context.WithCancel(context.Background())
	defer cancelFiller()
	fillerErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.Get(fillerCtx, p, params, nil)
		fillerErr <- err
	}()
	<-p.entered // the filler is inside Generate; its entry is published

	var waiterInfo CacheInfo
	waiterErr := make(chan error, 1)
	go func() {
		_, _, info, err := c.Get(context.Background(), p, params, nil)
		waiterInfo = info
		waiterErr <- err
	}()
	// No event marks "waiter parked on the entry"; the sleep just makes that
	// interleaving overwhelmingly likely. The retry path is correct either
	// way — if the waiter arrives after the eviction it simply fills fresh.
	time.Sleep(20 * time.Millisecond)

	cancelFiller()
	close(p.release)

	if err := <-fillerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("filler err = %v, want its own context.Canceled", err)
	}
	if err := <-waiterErr; err != nil {
		t.Fatalf("waiter with a live context inherited the filler's cancellation: %v", err)
	}
	if waiterInfo.Hit {
		t.Error("waiter reported a cache hit; it must have regenerated after the aborted fill")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("Generate called %d times, want 2 (aborted fill + waiter's retry)", got)
	}
}

// TestCacheWaiterOwnCancellation checks the other half of the contract: a
// waiter whose OWN context is dead reports its own error and does not
// trigger a regeneration.
func TestCacheWaiterOwnCancellation(t *testing.T) {
	var calls atomic.Int32
	p := newGatedProgram(&calls)
	c := NewTraceCache()
	params := workload.Params{Scale: 1, Seed: 1}

	fillerCtx, cancelFiller := context.WithCancel(context.Background())
	defer cancelFiller()
	fillerErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.Get(fillerCtx, p, params, nil)
		fillerErr <- err
	}()
	<-p.entered

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.Get(waiterCtx, p, params, nil)
		waiterErr <- err
	}()
	time.Sleep(20 * time.Millisecond)

	cancelWaiter()
	cancelFiller()
	close(p.release)

	if err := <-fillerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("filler err = %v, want context.Canceled", err)
	}
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("Generate called %d times, want 1 (no retry for a dead waiter)", got)
	}
}
