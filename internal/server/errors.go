package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"

	"syncsim/internal/api"
	"syncsim/internal/engine"
	"syncsim/internal/machine"
	"syncsim/internal/workload/suite"
)

// Sentinel errors of the job layer. Everything a handler can fail with is
// classified by exactly one mapping (classify) so the error→status
// taxonomy lives in one place and is pinned by TestErrorTaxonomy.
var (
	// errBadRequest wraps request decoding and validation failures → 400.
	errBadRequest = errors.New("bad request")
	// errWedged is the watchdog's verdict: the job's scheduler heartbeat
	// stalled and the job was aborted via its context → 504.
	errWedged = errors.New("job wedged: scheduler heartbeat stalled")
	// errNoModel: /v1/predict in analytic mode asked for a cell the loaded
	// model has not fitted (or no model is loaded at all) → 422.
	errNoModel = errors.New("no fitted prediction model for this cell")
)

// httpError is the resolved HTTP rendering of a job failure.
type httpError struct {
	status int
	msg    string // public message; never contains a stack or internals
	// retryAfter: send the adaptive Retry-After hint (429/503 shedding).
	retryAfter bool
	// incident is the opaque incident ID minted for panics; the stack goes
	// to the server log under this ID, never onto the wire.
	incident string
}

// classify maps a job error onto HTTP semantics. It is THE error taxonomy:
//
//	panic (any layer)            → 500 + opaque incident ID
//	queue full / load shed       → 429 + Retry-After
//	body too large               → 413
//	unknown benchmark            → 400
//	invalid request or config    → 400
//	invariant violation          → 422 (the simulation itself is unsound)
//	no fitted predict cell       → 422 (analytic mode without a model)
//	watchdog abort (wedged job)  → 504
//	job timeout                  → 504
//	cancellation (drain, storm)  → 503 + Retry-After
//	anything else                → 500
func classify(err error) httpError {
	var pe *engine.PanicError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &pe):
		id := newIncidentID()
		return httpError{
			status:   http.StatusInternalServerError,
			msg:      fmt.Sprintf("internal error (incident %s)", id),
			incident: id,
		}
	case errors.Is(err, errBusy):
		return httpError{status: http.StatusTooManyRequests, msg: "server at capacity, retry later", retryAfter: true}
	case errors.As(err, &mbe):
		return httpError{status: http.StatusRequestEntityTooLarge, msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
	case errors.Is(err, suite.ErrUnknownBenchmark), errors.Is(err, errBadRequest):
		return httpError{status: http.StatusBadRequest, msg: err.Error()}
	case errors.Is(err, machine.ErrInvariant), errors.Is(err, errNoModel):
		return httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	case errors.Is(err, errWedged):
		return httpError{status: http.StatusGatewayTimeout, msg: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return httpError{status: http.StatusGatewayTimeout, msg: "job timed out"}
	case errors.Is(err, context.Canceled):
		return httpError{status: http.StatusServiceUnavailable, msg: "job cancelled (server draining or clients gone)", retryAfter: true}
	default:
		return httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
}

// newIncidentID mints a short opaque ID correlating a 500 response with
// the stack trace in the server log.
func newIncidentID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "000000000000" // crypto/rand failure; keep serving
	}
	return hex.EncodeToString(b[:])
}

// writeError renders a job failure: classify once, log panics with their
// incident ID and stack, attach the adaptive Retry-After hint to shedding
// statuses, and keep internals off the wire.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	he := classify(err)
	if he.incident != "" {
		s.panicked.Inc()
		var pe *engine.PanicError
		errors.As(err, &pe)
		s.logf("incident %s: panic in job %q: %v\n%s", he.incident, pe.Job, pe.Value, pe.Stack)
	}
	if r.Context().Err() != nil {
		return // the client is gone; there is no one to write to
	}
	if he.status == http.StatusTooManyRequests {
		s.rejected.Inc()
	}
	if he.retryAfter {
		w.Header().Set(api.HeaderRetryAfter, s.retryAfterHint())
	}
	if he.incident != "" {
		w.Header().Set(api.HeaderIncidentID, he.incident)
	}
	http.Error(w, he.msg, he.status)
}
