package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"syncsim/internal/chaos"
	"syncsim/internal/engine"
	"syncsim/internal/machine"
	"syncsim/internal/metrics"
	"syncsim/internal/workload/suite"
)

// TestClassifyTaxonomy pins the full error→HTTP-status mapping in one
// table: changing a status is an API break and must show up here.
func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		status     int
		retryAfter bool
		incident   bool
	}{
		{"panic", engine.Recovered("job", "boom"), http.StatusInternalServerError, false, true},
		{"wrapped panic", fmt.Errorf("run: %w", engine.Recovered("job", "boom")), http.StatusInternalServerError, false, true},
		{"busy", errBusy, http.StatusTooManyRequests, true, false},
		{"body too large", &http.MaxBytesError{Limit: 16}, http.StatusRequestEntityTooLarge, false, false},
		{"unknown benchmark", fmt.Errorf("suite: %w %q", suite.ErrUnknownBenchmark, "Nope"), http.StatusBadRequest, false, false},
		{"bad request", fmt.Errorf("%w: negative scale", errBadRequest), http.StatusBadRequest, false, false},
		{"invalid machine config", fmt.Errorf("%w: %v", errBadRequest, errors.New("machine: unknown lock algorithm")), http.StatusBadRequest, false, false},
		{"invariant violation", fmt.Errorf("cycle 40: %w", machine.ErrInvariant), http.StatusUnprocessableEntity, false, false},
		{"no predict cell", fmt.Errorf("%w: Grav/queue", errNoModel), http.StatusUnprocessableEntity, false, false},
		{"wedged", fmt.Errorf("%w (no heartbeat)", errWedged), http.StatusGatewayTimeout, false, false},
		{"timeout", fmt.Errorf("machine: cancelled: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, false, false},
		{"cancelled", fmt.Errorf("machine: cancelled: %w", context.Canceled), http.StatusServiceUnavailable, true, false},
		{"unknown", errors.New("mystery"), http.StatusInternalServerError, false, false},
	}
	for _, tc := range cases {
		he := classify(tc.err)
		if he.status != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, he.status, tc.status)
		}
		if he.retryAfter != tc.retryAfter {
			t.Errorf("%s: retryAfter = %v, want %v", tc.name, he.retryAfter, tc.retryAfter)
		}
		if (he.incident != "") != tc.incident {
			t.Errorf("%s: incident = %q, want present=%v", tc.name, he.incident, tc.incident)
		}
		if tc.incident && (strings.Contains(he.msg, "boom") || strings.Contains(he.msg, "goroutine")) {
			t.Errorf("%s: public message leaks internals: %q", tc.name, he.msg)
		}
	}
}

// TestErrorTaxonomyOverHTTP drives the taxonomy end to end through the
// real handlers: each row provokes one failure class and pins the wire
// behaviour (status, Retry-After, incident header).
func TestErrorTaxonomyOverHTTP(t *testing.T) {
	leakCheck(t)

	// A tiny body cap for the 413 row; everything else fits comfortably.
	s := New(Config{Workers: 1, MaxBodyBytes: 256, ResultCacheSize: -1, Logf: t.Logf})
	defer s.Close()
	fail := make(chan error, 1)
	s.execTasks = func(ctx context.Context, tasks []engine.Task) ([]engine.TaskResult, metrics.SuiteReport, error) {
		select {
		case err := <-fail:
			if err != nil {
				return nil, metrics.SuiteReport{}, err
			}
			panic("injected handler panic")
		default:
			return []engine.TaskResult{{Result: &machine.Result{RunTime: 42}}}, metrics.SuiteReport{}, nil
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bigBody := `{"bench":"Qsort","lock":"` + strings.Repeat("x", 300) + `"}`
	cases := []struct {
		name     string
		body     string
		inject   error // non-nil: next execTasks returns it; nil+armed: panics
		arm      bool
		status   int
		incident bool
	}{
		{name: "unknown benchmark", body: `{"bench":"Nope"}`, status: http.StatusBadRequest},
		{name: "invalid machine config", body: `{"bench":"Qsort","lock":"mutex"}`, status: http.StatusBadRequest},
		{name: "unknown scheduler", body: `{"bench":"Qsort","sched":"speculative"}`, status: http.StatusBadRequest},
		{name: "negative workers", body: `{"bench":"Qsort","sched":"parallel","workers":-1}`, status: http.StatusBadRequest},
		{name: "workers without parallel sched", body: `{"bench":"Qsort","workers":4}`, status: http.StatusBadRequest},
		{name: "body too large", body: bigBody, status: http.StatusRequestEntityTooLarge},
		{name: "invariant violation", body: `{"bench":"Qsort","scale":0.01,"seed":11}`,
			inject: fmt.Errorf("cycle 9: %w", machine.ErrInvariant), arm: true, status: http.StatusUnprocessableEntity},
		{name: "job timeout", body: `{"bench":"Qsort","scale":0.01,"seed":12}`,
			inject: fmt.Errorf("cancelled: %w", context.DeadlineExceeded), arm: true, status: http.StatusGatewayTimeout},
		{name: "panic", body: `{"bench":"Qsort","scale":0.01,"seed":13}`, arm: true,
			status: http.StatusInternalServerError, incident: true},
	}
	for _, tc := range cases {
		if tc.arm {
			fail <- tc.inject
		}
		resp, err := http.Post(ts.URL+"/v1/sim", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if got := resp.Header.Get("X-Incident-Id") != ""; got != tc.incident {
			t.Errorf("%s: incident header present = %v, want %v", tc.name, got, tc.incident)
		}
	}

	snap := s.reg.Snapshot()
	if snap.Counters["jobs_panicked"] != 1 {
		t.Errorf("jobs_panicked = %d, want 1", snap.Counters["jobs_panicked"])
	}
}

// TestChaosQueueFullPressure: the QueueFull fault point sheds load as a
// real 429 with a parseable adaptive Retry-After inside the bounds.
func TestChaosQueueFullPressure(t *testing.T) {
	leakCheck(t)
	plane := chaos.New(1)
	plane.Set(chaos.QueueFull, 1)
	s, _, gate := gatedServer(Config{Workers: 2, ResultCacheSize: -1, Chaos: plane})
	close(gate)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, resp := postSim(t, ts, `{"bench":"Qsort","scale":0.01}`)
	if resp == nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 under chaos queue pressure", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < minRetryAfterSec || ra > maxRetryAfterSec {
		t.Errorf("Retry-After = %q, want an int in [%d, %d]",
			resp.Header.Get("Retry-After"), minRetryAfterSec, maxRetryAfterSec)
	}
}

// TestRetryAfterBounds pins the adaptive hint's bounds: for any queue
// pressure and any jitter draw, the hint stays within [1, 30] seconds,
// never decreases as pressure grows (at fixed jitter), and an idle queue
// suggests the minimum.
func TestRetryAfterBounds(t *testing.T) {
	for _, capDepth := range []int{-1, 0, 1, 64, 1024} {
		for _, queued := range []int{0, 1, capDepth / 2, capDepth, capDepth * 2, 1 << 20} {
			if queued < 0 {
				continue
			}
			for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.999999} {
				got := retryAfterSeconds(queued, capDepth, u)
				if got < minRetryAfterSec || got > maxRetryAfterSec {
					t.Fatalf("retryAfterSeconds(%d, %d, %v) = %d, outside [%d, %d]",
						queued, capDepth, u, got, minRetryAfterSec, maxRetryAfterSec)
				}
			}
		}
	}
	if got := retryAfterSeconds(0, 64, 0); got != minRetryAfterSec {
		t.Errorf("idle queue, zero jitter: hint = %d, want %d", got, minRetryAfterSec)
	}
	prev := 0
	for q := 0; q <= 64; q += 8 {
		v := retryAfterSeconds(q, 64, 0.5)
		if v < prev {
			t.Errorf("hint not monotone in pressure: queued=%d gave %d after %d", q, v, prev)
		}
		prev = v
	}
	if empty, full := retryAfterSeconds(0, 64, 0.5), retryAfterSeconds(64, 64, 0.5); full <= empty {
		t.Errorf("saturated queue hint (%d) not above idle hint (%d)", full, empty)
	}
}

// TestHandlerRecoverer exercises the OUTER recover barrier — the one in
// Handler(), not the flight's. Poisoning the result cache with a value of
// the wrong type makes the handler's type assertion panic before any job
// runs; the middleware must still answer 500 + incident ID instead of
// tearing down the connection.
func TestHandlerRecoverer(t *testing.T) {
	leakCheck(t)
	s := New(Config{Workers: 1, Logf: t.Logf})
	defer s.Close()
	job, err := normalizeSim(SimRequest{Bench: "Qsort", Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s.results.put(job.key, "poison: not a *SimPayload")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sim", "application/json",
		strings.NewReader(`{"bench":"Qsort","scale":0.01}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 from the outer recover barrier", resp.StatusCode)
	}
	if resp.Header.Get("X-Incident-Id") == "" {
		t.Error("500 from the outer barrier missing X-Incident-Id")
	}

	// The server is still serviceable: the next (different) request works.
	_, ok := postSim(t, ts, `{"bench":"Qsort","scale":0.01,"seed":3}`)
	if ok == nil || ok.StatusCode != http.StatusOK {
		t.Fatalf("server unserviceable after recovered handler panic")
	}
}
