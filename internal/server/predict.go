package server

import (
	"fmt"
	"net/http"

	"syncsim/internal/api"
)

// defaultPredictMaxError is the auto mode's relative-error tolerance when
// the request leaves MaxError zero: cells whose calibrated bound is worse
// fall back to cycle-exact simulation.
const defaultPredictMaxError = 0.15

// predictJob is a validated PredictRequest: the canonicalised request plus
// the exact simulation job the fallback path would run.
type predictJob struct {
	req api.PredictRequest
	sim simJob
}

// normalizePredict validates a predict request and resolves the model cell
// to the lock/consistency pair its fallback simulation uses.
func normalizePredict(req api.PredictRequest) (predictJob, error) {
	switch req.Mode {
	case "", api.PredictAuto:
		req.Mode = api.PredictAuto
	case api.PredictAnalytic, api.PredictSimulate:
	default:
		return predictJob{}, fmt.Errorf("unknown mode %q (want %s, %s, %s)",
			req.Mode, api.PredictAnalytic, api.PredictSimulate, api.PredictAuto)
	}
	if req.MaxError < 0 {
		return predictJob{}, fmt.Errorf("negative max_error %v", req.MaxError)
	}
	if req.MaxError == 0 {
		req.MaxError = defaultPredictMaxError
	}

	var lock, cons string
	switch req.Model {
	case "", "queue":
		req.Model = "queue"
		lock, cons = "queue", "sc"
	case "tts":
		lock, cons = "tts", "sc"
	case "wo":
		lock, cons = "queue", "wo"
	default:
		return predictJob{}, fmt.Errorf("unknown model %q (want queue, tts, wo)", req.Model)
	}

	sim, err := normalizeSim(api.SimRequest{
		Bench: req.Bench,
		Scale: req.Scale,
		Seed:  req.Seed,
		Lock:  lock,
		Cons:  cons,
	})
	if err != nil {
		return predictJob{}, err
	}
	req.Bench = sim.req.Bench
	req.Scale = sim.req.Scale
	return predictJob{req: req, sim: sim}, nil
}

// handlePredict serves POST /v1/predict. The analytic path is pure
// arithmetic on the fitted model — it never acquires a worker slot, never
// touches the admission queue, and leaves every job counter unchanged
// (pinned by TestPredictAnalyticBypassesQueue). The fallback path is
// exactly /v1/sim's machinery: result cache, single-flight coalescing,
// admission queue, watchdog.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	done, ok := s.admitJobRequest(w, r)
	if !ok {
		return
	}
	defer done()

	var req api.PredictRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, r, fmt.Errorf("%w: %w", errBadRequest, err))
		return
	}
	job, err := normalizePredict(req)
	if err != nil {
		s.writeError(w, r, fmt.Errorf("%w: %w", errBadRequest, err))
		return
	}

	var pred *api.Prediction
	if p, perr := s.predict.Predict(job.req.Bench, job.req.Model, job.req.Scale); perr == nil {
		pred = &p
	}

	analytic := false
	switch job.req.Mode {
	case api.PredictAnalytic:
		if pred == nil {
			s.writeError(w, r, fmt.Errorf("%w: %s/%s", errNoModel, job.req.Bench, job.req.Model))
			return
		}
		analytic = true
	case api.PredictAuto:
		// Trust the fast path only when its published bound meets the
		// caller's tolerance AND the scale is inside the calibrated
		// envelope; anything else earns a cycle-exact run.
		analytic = pred != nil && pred.ErrBound <= job.req.MaxError && !pred.Extrapolated
	}

	if analytic {
		s.predAnalytic.Inc()
		writeJSON(w, http.StatusOK, api.PredictResponse{
			Request:    job.req,
			Source:     "analytic",
			Prediction: pred,
			Served:     "model",
		})
		return
	}

	s.predFallback.Inc()
	payload, served, err := s.simResult(r, job.sim)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, api.PredictResponse{
		Request:    job.req,
		Source:     "simulate",
		Prediction: pred,
		Sim:        payload,
		Served:     served,
	})
}
