package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"syncsim/internal/api"
)

func TestParseQuotas(t *testing.T) {
	t.Run("valid", func(t *testing.T) {
		got, err := ParseQuotas([]string{"alice=2:5", "bob=0.5"})
		if err != nil {
			t.Fatal(err)
		}
		if q := got["alice"]; q.RPS != 2 || q.Burst != 5 {
			t.Errorf("alice = %+v", q)
		}
		// Omitted burst defaults to ceil(rps), floored at 1.
		if q := got["bob"]; q.RPS != 0.5 || q.Burst != 1 {
			t.Errorf("bob = %+v", q)
		}
	})
	t.Run("sanitised key matches the wire", func(t *testing.T) {
		got, err := ParseQuotas([]string{"Team Alpha=1:1"})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := got[TenantLabel("Team Alpha")]; !ok {
			t.Errorf("flag tenant and header tenant land in different buckets: %v", got)
		}
	})
	t.Run("rejects", func(t *testing.T) {
		for _, spec := range []string{"noequals", "=1:1", "a=zero", "a=-1", "a=1:0", "a=1:x"} {
			if _, err := ParseQuotas([]string{spec}); err == nil {
				t.Errorf("ParseQuotas(%q) succeeded", spec)
			}
		}
		if _, err := ParseQuotas([]string{"a=1:1", "A=2:2"}); err == nil {
			t.Error("duplicate tenant (after sanitisation) accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if got, err := ParseQuotas(nil); err != nil || got != nil {
			t.Errorf("ParseQuotas(nil) = %v, %v", got, err)
		}
	})
}

func TestQuotaSetAdmit(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := NewQuotaSet(map[string]Quota{"alice": {RPS: 2, Burst: 3}}, clock)

	// Bucket starts full: the whole burst is admitted back to back.
	for i := 0; i < 3; i++ {
		if _, ok := s.Admit("alice"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	wait, ok := s.Admit("alice")
	if ok {
		t.Fatal("request past the burst admitted")
	}
	// Empty bucket at 2 rps: one whole token is 500ms away.
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Errorf("retryAfter = %v, want (0, 500ms]", wait)
	}

	// Refill is proportional to elapsed time on the injected clock.
	now = now.Add(time.Second) // +2 tokens
	if _, ok := s.Admit("alice"); !ok {
		t.Error("rejected after refill")
	}
	if _, ok := s.Admit("alice"); !ok {
		t.Error("second refilled token rejected")
	}
	if _, ok := s.Admit("alice"); ok {
		t.Error("admitted past the refilled tokens")
	}
	// Refill caps at Burst, never beyond.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if _, ok := s.Admit("alice"); !ok {
			t.Fatalf("post-idle burst request %d rejected", i)
		}
	}
	if _, ok := s.Admit("alice"); ok {
		t.Error("idle spell grew the bucket past Burst")
	}

	// Unconfigured tenants and the untenanted label are never throttled.
	for i := 0; i < 100; i++ {
		if _, ok := s.Admit("bob"); !ok {
			t.Fatal("unconfigured tenant throttled")
		}
		if _, ok := s.Admit(""); !ok {
			t.Fatal("untenanted request throttled")
		}
	}

	// A nil set admits everything (quotas not configured).
	var nilSet *QuotaSet
	if _, ok := nilSet.Admit("alice"); !ok {
		t.Error("nil QuotaSet throttled")
	}
}

// TestQuotaHTTPEnforcement: the acceptance scenario end to end. Two
// tenants, one quota: the quota'd tenant's over-budget request is shed
// with 429 + a tenant-scoped Retry-After while its in-budget requests,
// the other tenant's, and untenanted traffic all succeed unchanged.
func TestQuotaHTTPEnforcement(t *testing.T) {
	now := time.Unix(5000, 0)
	s := New(Config{
		Workers:  2,
		Quotas:   map[string]Quota{"alice": {RPS: 1, Burst: 2}},
		QuotaNow: func() time.Time { return now },
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(tenant string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sim",
			strings.NewReader(`{"bench":"Qsort","scale":0.01,"seed":3}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(api.HeaderTenant, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp
	}

	// alice's burst of 2 is admitted; the third is shed.
	for i := 0; i < 2; i++ {
		if resp := post("alice"); resp.StatusCode != http.StatusOK {
			t.Fatalf("alice in-budget request %d = %d", i, resp.StatusCode)
		}
	}
	over := post("alice")
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over-budget request = %d, want 429", over.StatusCode)
	}
	if ra := over.Header.Get(api.HeaderRetryAfter); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive whole-seconds hint", ra)
	}

	// bob (no quota) and untenanted traffic sail through, alice's storm
	// notwithstanding — her bucket is hers alone.
	for i := 0; i < 4; i++ {
		if resp := post("bob"); resp.StatusCode != http.StatusOK {
			t.Fatalf("bob request %d = %d although bob has no quota", i, resp.StatusCode)
		}
		if resp := post(""); resp.StatusCode != http.StatusOK {
			t.Fatalf("untenanted request %d = %d", i, resp.StatusCode)
		}
	}

	// The clock advancing refills alice.
	now = now.Add(2 * time.Second)
	if resp := post("alice"); resp.StatusCode != http.StatusOK {
		t.Errorf("alice rejected after refill: %d", resp.StatusCode)
	}

	// The quota path is visible in the metrics.
	if got := s.reg.Snapshot().Counters["jobs_throttled"]; got != 1 {
		t.Errorf("jobs_throttled = %d, want 1", got)
	}
}
