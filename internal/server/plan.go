package server

import (
	"fmt"

	"syncsim/internal/api"
	"syncsim/internal/engine"
	"syncsim/internal/workload"
)

// This file is the fleet coordinator's window into the server's job
// normalisation: PlanSim and PlanSweep expose — without running anything —
// the exact canonical requests, cache keys and trace routing keys the
// service itself derives, so a coordinator that fans a sweep out cell by
// cell produces requests (and therefore results, and cache entries)
// byte-identical to a single backend executing the whole sweep locally.

// SimPlan is the execution plan of one SimRequest.
type SimPlan struct {
	// Request is the canonicalised request (defaults applied, spellings
	// normalised) — the form the service echoes in payloads.
	Request api.SimRequest
	// Key is the job's result-cache key: L1 (resultLRU) and the shared
	// L2 store both index by it.
	Key string
	// Route is the content-addressed trace key (engine.KeyFor). The
	// fleet ring hashes it so every job over one generated trace lands
	// on the backend that already holds that trace in its engine cache.
	Route engine.Key
}

// PlanSim resolves a SimRequest exactly as POST /v1/sim would, returning
// its plan instead of executing it.
func PlanSim(req api.SimRequest) (SimPlan, error) {
	job, err := normalizeSim(req)
	if err != nil {
		return SimPlan{}, err
	}
	return SimPlan{
		Request: job.req,
		Key:     job.key,
		Route:   engine.KeyFor(job.prog, job.params),
	}, nil
}

// SweepCell is one (benchmark × model) cell of a sweep plan: the sim
// request whose payload carries that cell's share of the sweep response.
type SweepCell struct {
	// Bench and Model name the cell in the sweep's outcome matrix.
	Bench string
	Model string
	// Plan is the cell's sim plan. All models of one benchmark share one
	// Route (the model is a machine config, not a trace parameter), so a
	// ring keyed on Route keeps a benchmark's three model runs — and the
	// trace generation they share — on one backend.
	Plan SimPlan
}

// SweepPlan describes how the fleet executes a SweepRequest: the
// canonical request and sweep cache key (identical to a single backend's)
// plus the cell grid in suite × model order — the exact order core's
// runMatrix enumerates, which the merger relies on.
type SweepPlan struct {
	Request api.SweepRequest
	Key     string
	Cells   []SweepCell
	// Params is the parameter set every outcome of this sweep echoes
	// (core sets Params on outcomes without applying NCPU defaults —
	// the per-benchmark default NCPU lives only inside the cells).
	Params workload.Params
}

// modelWire maps a canonical model name to the lock/cons pair its machine
// config uses — the same mapping as core.Model.MachineConfig, pinned
// against it by TestPlanMatchesCoreModels.
var modelWire = map[string]struct{ lock, cons string }{
	"queue": {lock: "queue", cons: "sc"},
	"tts":   {lock: "tts", cons: "sc"},
	"wo":    {lock: "queue", cons: "wo"},
}

// PlanSweep resolves a SweepRequest exactly as POST /v1/sweep would and
// expands it into its cell grid.
func PlanSweep(req api.SweepRequest) (SweepPlan, error) {
	job, err := normalizeSweep(req)
	if err != nil {
		return SweepPlan{}, err
	}
	plan := SweepPlan{
		Request: job.req,
		Key:     job.key,
		Params:  workload.Params{Scale: job.req.Scale, Seed: job.req.Seed},
	}
	for _, b := range job.sel.Benchmarks() {
		for _, m := range job.req.Models {
			w, ok := modelWire[m]
			if !ok {
				return SweepPlan{}, fmt.Errorf("no wire mapping for model %q", m)
			}
			cell, err := PlanSim(api.SimRequest{
				Bench: b.Program.Name(),
				Scale: job.req.Scale,
				Seed:  job.req.Seed,
				Lock:  w.lock,
				Cons:  w.cons,
			})
			if err != nil {
				return SweepPlan{}, fmt.Errorf("cell %s/%s: %w", b.Program.Name(), m, err)
			}
			plan.Cells = append(plan.Cells, SweepCell{Bench: b.Program.Name(), Model: m, Plan: cell})
		}
	}
	return plan, nil
}
