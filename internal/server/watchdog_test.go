package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"syncsim/internal/engine"
	"syncsim/internal/machine"
	"syncsim/internal/metrics"
)

// watchdogServer builds a server with a short stall timeout and an
// execTasks stub driven by the given body. The stub receives the
// watchdog-instrumented context, so machine.Beat(ctx, ...) feeds the
// monitor exactly as a real scheduler loop would.
func watchdogServer(stall time.Duration, body func(ctx context.Context) error) *Server {
	s := New(Config{Workers: 2, ResultCacheSize: -1, StallTimeout: stall})
	s.execTasks = func(ctx context.Context, tasks []engine.Task) ([]engine.TaskResult, metrics.SuiteReport, error) {
		if err := body(ctx); err != nil {
			return nil, metrics.SuiteReport{}, err
		}
		return []engine.TaskResult{{Result: &machine.Result{RunTime: 42}}}, metrics.SuiteReport{}, nil
	}
	return s
}

// TestWatchdogAbortsWedgedJob: a job that heartbeats and then goes silent
// (a livelocked scheduler loop) is aborted by the watchdog — answered 504,
// counted in jobs_wedged — without touching the process or the pool.
func TestWatchdogAbortsWedgedJob(t *testing.T) {
	leakCheck(t)
	s := watchdogServer(30*time.Millisecond, func(ctx context.Context) error {
		for i := uint64(1); i <= 3; i++ {
			machine.Beat(ctx, i*100)
		}
		// Wedge: stop beating but keep "running" until aborted.
		<-ctx.Done()
		return ctx.Err()
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, resp := postSim(t, ts, `{"bench":"Qsort","scale":0.01}`)
	if resp == nil || resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 for a wedged job", resp.StatusCode)
	}
	snap := s.reg.Snapshot()
	if snap.Counters["jobs_wedged"] != 1 {
		t.Errorf("jobs_wedged = %d, want 1", snap.Counters["jobs_wedged"])
	}
	if snap.Counters["jobs_panicked"] != 0 {
		t.Errorf("jobs_panicked = %d, want 0 (wedge is not a panic)", snap.Counters["jobs_panicked"])
	}
}

// TestWatchdogSparesHealthyJob: continuous heartbeats keep a slow job
// alive well past the stall timeout.
func TestWatchdogSparesHealthyJob(t *testing.T) {
	leakCheck(t)
	const stall = 40 * time.Millisecond
	s := watchdogServer(stall, func(ctx context.Context) error {
		deadline := time.Now().Add(4 * stall) // far beyond one stall window
		for i := uint64(1); time.Now().Before(deadline); i++ {
			machine.Beat(ctx, i*64)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
		}
		return nil
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, resp := postSim(t, ts, `{"bench":"Qsort","scale":0.01}`)
	if resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 for a slow-but-beating job", resp.StatusCode)
	}
	if n := s.reg.Snapshot().Counters["jobs_wedged"]; n != 0 {
		t.Errorf("jobs_wedged = %d, want 0", n)
	}
}

// TestWatchdogUnarmedBeforeFirstBeat: the monitor arms only once the
// simulation phase starts beating, so a job spending longer than the
// stall timeout in queue wait or trace generation (which cannot beat) is
// not shot; that phase is the JobTimeout's jurisdiction.
func TestWatchdogUnarmedBeforeFirstBeat(t *testing.T) {
	leakCheck(t)
	s := watchdogServer(20*time.Millisecond, func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond): // 5x stall, zero beats
			return nil
		}
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, resp := postSim(t, ts, `{"bench":"Qsort","scale":0.01}`)
	if resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200: watchdog must not arm before the first beat", resp.StatusCode)
	}
}

// TestWatchdogDisabled: StallTimeout < 0 turns the watchdog off entirely —
// no monitor goroutine, no heartbeat context, jobs run as before.
func TestWatchdogDisabled(t *testing.T) {
	leakCheck(t)
	s := New(Config{Workers: 1, ResultCacheSize: -1, StallTimeout: -1})
	defer s.Close()
	ctx, stop := s.watchJob(context.Background())
	defer stop()
	if _, ok := ctx.Deadline(); ok {
		t.Error("disabled watchdog added a deadline")
	}
	if ctx.Done() != nil {
		t.Error("disabled watchdog wrapped the context in a cancelable one")
	}
}
