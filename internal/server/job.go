package server

import (
	"fmt"
	"strings"

	"syncsim/internal/api"
	"syncsim/internal/core"
	"syncsim/internal/engine"
	"syncsim/internal/locks"
	"syncsim/internal/machine"
	"syncsim/internal/replay"
	"syncsim/internal/workload"
	"syncsim/internal/workload/suite"
)

// defaultScale keeps an omitted scale small: the service is meant for
// interactive repeated queries, and scale 1.0 runs take minutes of CPU.
// Clients reproducing paper magnitudes ask for them explicitly.
const defaultScale = 0.2

// The wire types live in internal/api (the versioned contract both client
// and server depend on). These aliases keep one release of compatibility
// for code that referred to them through this package.
//
// Deprecated: use the internal/api types directly.
type (
	SimRequest    = api.SimRequest
	SimPayload    = api.SimPayload
	SimResponse   = api.SimResponse
	SweepRequest  = api.SweepRequest
	SweepOutcome  = api.SweepOutcome
	SweepPayload  = api.SweepPayload
	SweepResponse = api.SweepResponse
)

// simJob is a validated, canonicalised SimRequest ready to execute. Its
// key is what coalescing and the result cache operate on: two requests
// with the same key are guaranteed byte-identical traces (the engine.Key
// contract) simulated under identical machine configs, hence identical
// results.
type simJob struct {
	req    SimRequest // canonicalised copy, echoed in responses
	prog   workload.Program
	params workload.Params
	cfg    machine.Config
	key    string
}

// normalizeSim validates a request and resolves it to a runnable job.
func normalizeSim(req SimRequest) (simJob, error) {
	if req.Bench == "" {
		return simJob{}, fmt.Errorf("missing bench (one of %v)", suite.Names())
	}
	b, err := suite.ByName(req.Bench)
	if err != nil {
		return simJob{}, err
	}
	if req.Scale == 0 {
		req.Scale = defaultScale
	}
	if req.Scale < 0 {
		return simJob{}, fmt.Errorf("negative scale %v", req.Scale)
	}
	if req.NCPU < 0 {
		return simJob{}, fmt.Errorf("negative ncpu %d", req.NCPU)
	}

	cfg := machine.DefaultConfig()
	switch req.Lock {
	case "", "queue":
		req.Lock = "queue"
		cfg.Lock = locks.Queue
	case "tts":
		cfg.Lock = locks.TTS
	case "queue-exact":
		cfg.Lock = locks.QueueExact
	case "tts-backoff":
		cfg.Lock = locks.TTSBackoff
	default:
		return simJob{}, fmt.Errorf("unknown lock %q (want queue, tts, queue-exact, tts-backoff)", req.Lock)
	}
	switch req.Cons {
	case "", "sc":
		req.Cons = "sc"
		cfg.Consistency = machine.SeqConsistent
	case "wo":
		cfg.Consistency = machine.WeakOrdering
	default:
		return simJob{}, fmt.Errorf("unknown cons %q (want sc or wo)", req.Cons)
	}
	sched, err := machine.ParseSched(req.Sched)
	if err != nil {
		return simJob{}, fmt.Errorf("unknown sched %q (want %s)",
			req.Sched, strings.Join(machine.SchedulerNames(), ", "))
	}
	req.Sched = sched.String() // canonicalise "" → "calendar"
	cfg.Sched = sched
	if req.Workers < 0 {
		return simJob{}, fmt.Errorf("negative workers %d", req.Workers)
	}
	if req.Workers > 0 && sched != machine.SchedParallel {
		return simJob{}, fmt.Errorf("workers only applies to sched %q, got sched %q",
			machine.SchedParallel, req.Sched)
	}
	cfg.Workers = req.Workers
	cfg.Check = req.Check

	params := workload.Params{NCPU: req.NCPU, Scale: req.Scale, Seed: req.Seed}
	// Key like engine.KeyFor: the trace-determining parameters,
	// canonicalised so equivalent spellings coalesce, extended with the
	// result-determining machine knobs.
	k := engine.KeyFor(b.Program, params)
	req.Bench = k.Workload
	req.NCPU = k.NCPU
	req.Scale = k.Scale
	job := simJob{
		req:    req,
		prog:   b.Program,
		params: params,
		cfg:    cfg,
		// Sched and workers are keyed although every scheduler produces
		// identical statistics: the payload echoes the request and the
		// result's config, which must reflect what was asked for.
		key: fmt.Sprintf("sim|%s|%d|%g|%d|%s|%s|%s|%d|%t",
			k.Workload, k.NCPU, k.Scale, k.Seed, req.Lock, req.Cons, req.Sched, req.Workers, req.Check),
	}
	return job, nil
}

// TaskForRequest resolves a SimRequest to the exact engine.Task the
// service would run for it. Differential harnesses use it to replay a
// served request straight on an engine and demand bit-identical results.
func TaskForRequest(req SimRequest) (engine.Task, error) {
	job, err := normalizeSim(req)
	if err != nil {
		return engine.Task{}, err
	}
	return job.task(), nil
}

// task converts the job into the engine's schedulable unit.
func (j simJob) task() engine.Task {
	return engine.Task{
		Program: j.prog,
		Params:  j.params,
		Label:   j.req.Lock + "/" + j.req.Cons,
		Config:  j.cfg,
		Metrics: true,
	}
}

// analyzeJob is a validated, canonicalised AnalyzeRequest ready to run.
type analyzeJob struct {
	req    api.AnalyzeRequest
	prog   workload.Program
	params workload.Params
	cfg    machine.Config
	key    string
}

// normalizeAnalyze validates a what-if request and resolves it to a
// runnable job. The baseline machine reuses the sim request grammar (lock,
// cons) with the sim defaults; the perturbation list is canonicalised into
// the analyzer's application order.
func normalizeAnalyze(req api.AnalyzeRequest) (analyzeJob, error) {
	sim, err := normalizeSim(SimRequest{
		Bench: req.Bench, Scale: req.Scale, NCPU: req.NCPU, Seed: req.Seed,
		Lock: req.Lock, Cons: req.Cons,
	})
	if err != nil {
		return analyzeJob{}, err
	}
	req.Bench, req.Scale, req.NCPU = sim.req.Bench, sim.req.Scale, sim.req.NCPU
	req.Lock, req.Cons = sim.req.Lock, sim.req.Cons

	if req.Threshold < 0 || req.Threshold > 1 {
		return analyzeJob{}, fmt.Errorf("threshold %v outside [0, 1] (0 = service default)", req.Threshold)
	}
	valid := map[string]bool{}
	for _, p := range api.Perturbations() {
		valid[p] = true
	}
	seen := map[string]bool{}
	var perturb []string
	for _, p := range req.Perturb {
		if !valid[p] {
			return analyzeJob{}, fmt.Errorf("unknown perturbation %q (want %s)",
				p, strings.Join(api.Perturbations(), ", "))
		}
		if !seen[p] {
			seen[p] = true
			perturb = append(perturb, p)
		}
	}
	// Canonical order so equivalent spellings coalesce onto one flight.
	if perturb != nil {
		ordered := perturb[:0]
		for _, p := range api.Perturbations() {
			if seen[p] {
				ordered = append(ordered, p)
			}
		}
		perturb = ordered
	}
	req.Perturb = perturb

	return analyzeJob{
		req:    req,
		prog:   sim.prog,
		params: sim.params,
		cfg:    sim.cfg,
		key: fmt.Sprintf("analyze|%s|%d|%g|%d|%s|%s|%s|%g",
			req.Bench, req.NCPU, req.Scale, req.Seed, req.Lock, req.Cons,
			strings.Join(req.Perturb, ","), req.Threshold),
	}, nil
}

// AnalyzeJobForRequest resolves an AnalyzeRequest to the exact replay.Job
// the service would run for it, minus the cache (the caller supplies one).
// cmd/analyze's local mode uses it so in-process and remote analyses apply
// identical normalisation.
func AnalyzeJobForRequest(req api.AnalyzeRequest) (replay.Job, error) {
	job, err := normalizeAnalyze(req)
	if err != nil {
		return replay.Job{}, err
	}
	return replay.Job{Prog: job.prog, Params: job.params, Config: job.cfg, Request: job.req}, nil
}

// sweepJob is a validated SweepRequest.
type sweepJob struct {
	req    SweepRequest
	models []core.Model
	sel    suite.Selection
	key    string
}

func normalizeSweep(req SweepRequest) (sweepJob, error) {
	if req.Scale == 0 {
		req.Scale = defaultScale
	}
	if req.Scale < 0 {
		return sweepJob{}, fmt.Errorf("negative scale %v", req.Scale)
	}
	var models []core.Model
	seen := map[string]bool{}
	for _, m := range req.Models {
		if seen[m] {
			continue
		}
		seen[m] = true
		switch m {
		case "queue":
			models = append(models, core.ModelQueue)
		case "tts":
			models = append(models, core.ModelTTS)
		case "wo":
			models = append(models, core.ModelWO)
		default:
			return sweepJob{}, fmt.Errorf("unknown model %q (want queue, tts, wo)", m)
		}
	}
	if models == nil {
		models = []core.Model{core.ModelQueue, core.ModelTTS, core.ModelWO}
		req.Models = []string{"queue", "tts", "wo"}
	}
	sel, err := suite.NewSelection(req.Only...)
	if err != nil {
		return sweepJob{}, err
	}
	req.Only = sel.Names()
	return sweepJob{
		req:    req,
		models: models,
		sel:    sel,
		key: fmt.Sprintf("sweep|%g|%d|%s|%s",
			req.Scale, req.Seed, strings.Join(req.Models, ","), strings.Join(req.Only, ",")),
	}, nil
}
