package server

import (
	"fmt"
	"strings"

	"syncsim/internal/core"
	"syncsim/internal/engine"
	"syncsim/internal/locks"
	"syncsim/internal/machine"
	"syncsim/internal/metrics"
	"syncsim/internal/trace"
	"syncsim/internal/workload"
	"syncsim/internal/workload/suite"
)

// defaultScale keeps an omitted scale small: the service is meant for
// interactive repeated queries, and scale 1.0 runs take minutes of CPU.
// Clients reproducing paper magnitudes ask for them explicitly.
const defaultScale = 0.2

// SimRequest is the body of POST /v1/sim: one benchmark under one machine
// configuration. Zero values select the same defaults as the syncsim CLI.
type SimRequest struct {
	// Bench is the benchmark name (Grav, Pdsa, FullConn, Pverify, Qsort,
	// Topopt). Required.
	Bench string `json:"bench"`
	// Scale is the workload scale; 0 selects 0.2 (1.0 = paper magnitudes).
	Scale float64 `json:"scale,omitempty"`
	// NCPU is the processor count; 0 selects the benchmark default.
	NCPU int `json:"ncpu,omitempty"`
	// Seed drives generation randomness.
	Seed int64 `json:"seed,omitempty"`
	// Lock is the lock algorithm: queue (default), tts, queue-exact,
	// tts-backoff.
	Lock string `json:"lock,omitempty"`
	// Cons is the consistency model: sc (default) or wo.
	Cons string `json:"cons,omitempty"`
	// Check enables the runtime invariant checker (~1.5x slower).
	Check bool `json:"check,omitempty"`
}

// simJob is a validated, canonicalised SimRequest ready to execute. Its
// key is what coalescing and the result cache operate on: two requests
// with the same key are guaranteed byte-identical traces (the engine.Key
// contract) simulated under identical machine configs, hence identical
// results.
type simJob struct {
	req    SimRequest // canonicalised copy, echoed in responses
	prog   workload.Program
	params workload.Params
	cfg    machine.Config
	key    string
}

// normalizeSim validates a request and resolves it to a runnable job.
func normalizeSim(req SimRequest) (simJob, error) {
	if req.Bench == "" {
		return simJob{}, fmt.Errorf("missing bench (one of %v)", suite.Names())
	}
	b, err := suite.ByName(req.Bench)
	if err != nil {
		return simJob{}, err
	}
	if req.Scale == 0 {
		req.Scale = defaultScale
	}
	if req.Scale < 0 {
		return simJob{}, fmt.Errorf("negative scale %v", req.Scale)
	}
	if req.NCPU < 0 {
		return simJob{}, fmt.Errorf("negative ncpu %d", req.NCPU)
	}

	cfg := machine.DefaultConfig()
	switch req.Lock {
	case "", "queue":
		req.Lock = "queue"
		cfg.Lock = locks.Queue
	case "tts":
		cfg.Lock = locks.TTS
	case "queue-exact":
		cfg.Lock = locks.QueueExact
	case "tts-backoff":
		cfg.Lock = locks.TTSBackoff
	default:
		return simJob{}, fmt.Errorf("unknown lock %q (want queue, tts, queue-exact, tts-backoff)", req.Lock)
	}
	switch req.Cons {
	case "", "sc":
		req.Cons = "sc"
		cfg.Consistency = machine.SeqConsistent
	case "wo":
		cfg.Consistency = machine.WeakOrdering
	default:
		return simJob{}, fmt.Errorf("unknown cons %q (want sc or wo)", req.Cons)
	}
	cfg.Check = req.Check

	params := workload.Params{NCPU: req.NCPU, Scale: req.Scale, Seed: req.Seed}
	// Key like engine.KeyFor: the trace-determining parameters,
	// canonicalised so equivalent spellings coalesce, extended with the
	// result-determining machine knobs.
	k := engine.KeyFor(b.Program, params)
	req.Bench = k.Workload
	req.NCPU = k.NCPU
	req.Scale = k.Scale
	job := simJob{
		req:    req,
		prog:   b.Program,
		params: params,
		cfg:    cfg,
		key: fmt.Sprintf("sim|%s|%d|%g|%d|%s|%s|%t",
			k.Workload, k.NCPU, k.Scale, k.Seed, req.Lock, req.Cons, req.Check),
	}
	return job, nil
}

// TaskForRequest resolves a SimRequest to the exact engine.Task the
// service would run for it. Differential harnesses use it to replay a
// served request straight on an engine and demand bit-identical results.
func TaskForRequest(req SimRequest) (engine.Task, error) {
	job, err := normalizeSim(req)
	if err != nil {
		return engine.Task{}, err
	}
	return job.task(), nil
}

// task converts the job into the engine's schedulable unit.
func (j simJob) task() engine.Task {
	return engine.Task{
		Program: j.prog,
		Params:  j.params,
		Label:   j.req.Lock + "/" + j.req.Cons,
		Config:  j.cfg,
		Metrics: true,
	}
}

// SimPayload is the shareable part of a /v1/sim response: one pointer is
// handed to every coalesced waiter and kept in the result cache, so it is
// immutable after construction.
type SimPayload struct {
	Request SimRequest        `json:"request"`
	Ideal   trace.Summary     `json:"ideal"`
	Result  *machine.Result   `json:"result"`
	Report  metrics.RunReport `json:"report"`
}

// SimResponse is the full /v1/sim body: the payload plus how this
// particular request was served.
type SimResponse struct {
	*SimPayload
	// Served tells how the request was satisfied: "run" (this request
	// executed the simulation), "coalesced" (it joined an identical
	// in-flight run), or "cache" (the result cache had it).
	Served string `json:"served"`
}

// SweepRequest is the body of POST /v1/sweep: the full benchmark × model
// matrix (or a subset) in one job, the service-side equivalent of
// core.RunSuiteCtx.
type SweepRequest struct {
	// Scale is the workload scale; 0 selects 0.2.
	Scale float64 `json:"scale,omitempty"`
	// Seed drives generation randomness.
	Seed int64 `json:"seed,omitempty"`
	// Models restricts the machine models (queue, tts, wo); empty = all.
	Models []string `json:"models,omitempty"`
	// Only restricts the benchmarks by name; empty = all six.
	Only []string `json:"only,omitempty"`
}

// sweepJob is a validated SweepRequest.
type sweepJob struct {
	req    SweepRequest
	models []core.Model
	sel    suite.Selection
	key    string
}

func normalizeSweep(req SweepRequest) (sweepJob, error) {
	if req.Scale == 0 {
		req.Scale = defaultScale
	}
	if req.Scale < 0 {
		return sweepJob{}, fmt.Errorf("negative scale %v", req.Scale)
	}
	var models []core.Model
	seen := map[string]bool{}
	for _, m := range req.Models {
		if seen[m] {
			continue
		}
		seen[m] = true
		switch m {
		case "queue":
			models = append(models, core.ModelQueue)
		case "tts":
			models = append(models, core.ModelTTS)
		case "wo":
			models = append(models, core.ModelWO)
		default:
			return sweepJob{}, fmt.Errorf("unknown model %q (want queue, tts, wo)", m)
		}
	}
	if models == nil {
		models = []core.Model{core.ModelQueue, core.ModelTTS, core.ModelWO}
		req.Models = []string{"queue", "tts", "wo"}
	}
	sel, err := suite.NewSelection(req.Only...)
	if err != nil {
		return sweepJob{}, err
	}
	req.Only = sel.Names()
	return sweepJob{
		req:    req,
		models: models,
		sel:    sel,
		key: fmt.Sprintf("sweep|%g|%d|%s|%s",
			req.Scale, req.Seed, strings.Join(req.Models, ","), strings.Join(req.Only, ",")),
	}, nil
}

// SweepOutcome is one benchmark's share of a sweep response; model results
// are keyed by model name rather than core.Model's integer value.
type SweepOutcome struct {
	Name    string                     `json:"name"`
	Params  workload.Params            `json:"params"`
	Ideal   trace.Summary              `json:"ideal"`
	Results map[string]*machine.Result `json:"results"`
	Report  *metrics.RunReport         `json:"report,omitempty"`
}

// SweepPayload is the shareable part of a /v1/sweep response.
type SweepPayload struct {
	Request  SweepRequest        `json:"request"`
	Outcomes []SweepOutcome      `json:"outcomes"`
	Report   metrics.SuiteReport `json:"report"`
}

// SweepResponse is the full /v1/sweep body.
type SweepResponse struct {
	*SweepPayload
	Served string `json:"served"`
}
