package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"syncsim/internal/engine"
	"syncsim/internal/machine"
	"syncsim/internal/metrics"
)

// postSim POSTs a /v1/sim body and decodes the response. It reports
// failures with t.Errorf (never Fatalf) so it is safe to call from helper
// goroutines; callers must check resp for nil.
func postSim(t *testing.T, ts *httptest.Server, body string) (SimResponse, *http.Response) {
	t.Helper()
	var out SimResponse
	resp, err := http.Post(ts.URL+"/v1/sim", "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("POST /v1/sim: %v", err)
		return out, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read body: %v", err)
		return out, resp
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Errorf("decode %q: %v", raw, err)
		}
	}
	return out, resp
}

// TestEndToEndSim drives a real (small) simulation through the full HTTP
// stack and cross-checks the served result against a direct engine run of
// the same configuration: the service layer must change nothing.
func TestEndToEndSim(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"bench":"Qsort","scale":0.01,"seed":3,"lock":"tts","cons":"wo"}`
	got, resp := postSim(t, ts, body)
	if resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got.Served != "run" {
		t.Errorf("served = %q, want run", got.Served)
	}
	if got.Result == nil || got.Result.RunTime == 0 {
		t.Fatalf("no simulation result in response: %+v", got)
	}
	if got.Request.Lock != "tts" || got.Request.Cons != "wo" || got.Request.NCPU == 0 {
		t.Errorf("request echo not canonicalised: %+v", got.Request)
	}

	// Same configuration, straight through the engine.
	job, err := normalizeSim(SimRequest{Bench: "Qsort", Scale: 0.01, Seed: 3, Lock: "tts", Cons: "wo"})
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := engine.New(engine.Config{Workers: 1}).Run(context.Background(), []engine.Task{job.task()})
	if err != nil {
		t.Fatal(err)
	}
	if want := direct[0].Result.RunTime; got.Result.RunTime != want {
		t.Errorf("served RunTime = %d, direct engine run = %d", got.Result.RunTime, want)
	}

	// An identical request is now a result-cache hit.
	again, _ := postSim(t, ts, body)
	if again.Served != "cache" {
		t.Errorf("repeat served = %q, want cache", again.Served)
	}
	if again.Result.RunTime != got.Result.RunTime {
		t.Errorf("cached RunTime = %d, want %d", again.Result.RunTime, got.Result.RunTime)
	}
}

// TestEndToEndSimParallelSched serves the same simulation under the
// calendar and the speculative parallel scheduler and demands identical
// statistics on the wire: the scheduler is an implementation knob, never
// an observable one. The two requests must not share a cache entry (their
// echoed requests differ), which also pins sched/workers into the result
// cache key.
func TestEndToEndSimParallelSched(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	serial, resp := postSim(t, ts, `{"bench":"Qsort","scale":0.01,"seed":3}`)
	if resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("serial: status = %d, want 200", resp.StatusCode)
	}
	parallel, resp := postSim(t, ts, `{"bench":"Qsort","scale":0.01,"seed":3,"sched":"parallel","workers":4}`)
	if resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("parallel: status = %d, want 200", resp.StatusCode)
	}
	if parallel.Served != "run" {
		t.Errorf("parallel served = %q, want run (sched must be part of the cache key)", parallel.Served)
	}
	if parallel.Request.Sched != "parallel" || parallel.Request.Workers != 4 {
		t.Errorf("request echo lost the scheduler: %+v", parallel.Request)
	}
	if serial.Request.Sched != "calendar" {
		t.Errorf("omitted sched not canonicalised to calendar: %+v", serial.Request)
	}
	sr, pr := *serial.Result, *parallel.Result
	sr.Config, pr.Config = machine.Config{}, machine.Config{}
	sr.Sched, pr.Sched = machine.SchedStats{}, machine.SchedStats{}
	if !reflect.DeepEqual(sr, pr) {
		t.Errorf("parallel result diverges from calendar over the wire:\ncalendar: %+v\nparallel: %+v", sr, pr)
	}
}

// TestEndToEndSweep runs a one-benchmark, one-model sweep through the
// service and checks the table-shaped response.
func TestEndToEndSweep(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"scale":0.01,"only":["Qsort"],"models":["queue"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var out SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Outcomes) != 1 || out.Outcomes[0].Name != "Qsort" {
		t.Fatalf("outcomes = %+v, want exactly Qsort", out.Outcomes)
	}
	res, ok := out.Outcomes[0].Results["queue"]
	if !ok || res == nil || res.RunTime == 0 {
		t.Fatalf("no queue-model result: %+v", out.Outcomes[0].Results)
	}
	if out.Served != "run" {
		t.Errorf("served = %q, want run", out.Served)
	}
}

// gatedServer installs an execTasks hook that blocks every engine run on a
// gate channel and counts executions.
func gatedServer(cfg Config) (*Server, *atomic.Int64, chan struct{}) {
	s := New(cfg)
	runs := &atomic.Int64{}
	gate := make(chan struct{})
	s.execTasks = func(ctx context.Context, tasks []engine.Task) ([]engine.TaskResult, metrics.SuiteReport, error) {
		runs.Add(1)
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, metrics.SuiteReport{}, ctx.Err()
		}
		return []engine.TaskResult{{Result: &machine.Result{RunTime: 42}}}, metrics.SuiteReport{}, nil
	}
	return s, runs, gate
}

// leakCheck snapshots the goroutine count and registers a cleanup that
// waits (briefly) for the count to fall back, failing with a full stack
// dump if goroutines outlive the test body. Call it FIRST in the test so
// its cleanup runs after every deferred teardown (server Close, httptest
// Close).
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	})
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCoalescing proves the single-flight contract: N concurrent identical
// requests cause exactly one engine execution, with one "run" response and
// N-1 "coalesced" ones all carrying the same payload.
func TestCoalescing(t *testing.T) {
	leakCheck(t)
	s, runs, gate := gatedServer(Config{Workers: 2, ResultCacheSize: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	served := make([]string, n)
	times := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, resp := postSim(t, ts, `{"bench":"Qsort","scale":0.01}`)
			if resp == nil || resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			served[i] = out.Served
			times[i] = out.Result.RunTime
		}(i)
	}

	// Let all N requests pile onto the flight before releasing the one run.
	waitFor(t, "all requests in flight", func() bool { return s.InFlight() == n })
	close(gate)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Errorf("engine executions = %d, want exactly 1 for %d identical requests", got, n)
	}
	var ran, coalesced int
	for i, v := range served {
		switch v {
		case "run":
			ran++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("request %d served = %q", i, v)
		}
		if times[i] != 42 {
			t.Errorf("request %d RunTime = %d, want the shared payload (42)", i, times[i])
		}
	}
	if ran != 1 || coalesced != n-1 {
		t.Errorf("served split = %d run / %d coalesced, want 1 / %d", ran, coalesced, n-1)
	}
}

// TestBackpressure fills the admission queue and checks that the next
// distinct request is shed with 429 + Retry-After rather than queued.
func TestBackpressure(t *testing.T) {
	// Workers: 1 and no waiting room: one job in-system, rest rejected.
	s, _, gate := gatedServer(Config{Workers: 1, QueueDepth: -1, ResultCacheSize: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan SimResponse, 1)
	go func() {
		out, _ := postSim(t, ts, `{"bench":"Qsort","scale":0.01,"seed":1}`)
		first <- out
	}()
	waitFor(t, "first job to occupy the worker", func() bool { return s.adm.running() == 1 })

	// A *different* job (no coalescing) must be rejected immediately.
	_, resp := postSim(t, ts, `{"bench":"Qsort","scale":0.01,"seed":2}`)
	if resp == nil || resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	close(gate)
	if out := <-first; out.Served != "run" {
		t.Errorf("first job served = %q, want run", out.Served)
	}
	snap := s.reg.Snapshot()
	if snap.Counters["jobs_rejected"] != 1 {
		t.Errorf("jobs_rejected = %d, want 1", snap.Counters["jobs_rejected"])
	}
}

// TestGracefulDrain proves the shutdown contract: once draining, new jobs
// and health checks turn 503, but the job already in flight runs to
// completion and is answered 200, after which Drain returns.
func TestGracefulDrain(t *testing.T) {
	leakCheck(t)
	s, _, gate := gatedServer(Config{Workers: 2, ResultCacheSize: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inFlight := make(chan SimResponse, 1)
	status := make(chan int, 1)
	go func() {
		out, resp := postSim(t, ts, `{"bench":"Qsort","scale":0.01}`)
		code := 0
		if resp != nil {
			code = resp.StatusCode
		}
		status <- code
		inFlight <- out
	}()
	waitFor(t, "job to start", func() bool { return s.adm.running() == 1 })

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	// New work is refused while draining...
	_, resp := postSim(t, ts, `{"bench":"Grav","scale":0.01}`)
	if resp == nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new job during drain: status %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", hresp.StatusCode)
	}

	// ...but the in-flight job completes normally.
	close(gate)
	if code := <-status; code != http.StatusOK {
		t.Fatalf("in-flight job status = %d, want 200 despite drain", code)
	}
	if out := <-inFlight; out.Result == nil || out.Result.RunTime != 42 {
		t.Errorf("in-flight job payload lost during drain: %+v", out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain after completion: %v", err)
	}
	if n := s.InFlight(); n != 0 {
		t.Errorf("InFlight = %d after drain", n)
	}
}

// TestLeaderDisconnectKeepsFollowers checks the subtle coalescing case:
// the request that started the job hangs up, but a follower is still
// waiting, so the job must not be cancelled.
func TestLeaderDisconnectKeepsFollowers(t *testing.T) {
	leakCheck(t)
	s, runs, gate := gatedServer(Config{Workers: 2, ResultCacheSize: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	leaderCtx, leaderCancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(leaderCtx, http.MethodPost,
		ts.URL+"/v1/sim", strings.NewReader(`{"bench":"Qsort","scale":0.01}`))
	leaderDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		leaderDone <- err
	}()
	waitFor(t, "leader to start the job", func() bool { return runs.Load() == 1 })

	follower := make(chan SimResponse, 1)
	go func() {
		out, _ := postSim(t, ts, `{"bench":"Qsort","scale":0.01}`)
		follower <- out
	}()
	waitFor(t, "follower to join", func() bool { return s.InFlight() == 2 })

	leaderCancel()
	if err := <-leaderDone; err == nil {
		t.Error("leader request succeeded despite cancelled context")
	}
	// The follower is still interested: the job must survive and answer.
	close(gate)
	out := <-follower
	if out.Result == nil || out.Result.RunTime != 42 {
		t.Fatalf("follower lost the result after leader disconnect: %+v", out)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("engine executions = %d, want 1", got)
	}
}

// TestRequestValidation covers the 4xx surface.
func TestRequestValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"unknown bench", "/v1/sim", `{"bench":"Nope"}`, http.StatusBadRequest},
		{"missing bench", "/v1/sim", `{}`, http.StatusBadRequest},
		{"unknown field", "/v1/sim", `{"bench":"Qsort","bogus":1}`, http.StatusBadRequest},
		{"trailing data", "/v1/sim", `{"bench":"Qsort"}{"again":true}`, http.StatusBadRequest},
		{"negative scale", "/v1/sim", `{"bench":"Qsort","scale":-1}`, http.StatusBadRequest},
		{"bad lock", "/v1/sim", `{"bench":"Qsort","lock":"spin"}`, http.StatusBadRequest},
		{"bad model", "/v1/sweep", `{"models":["mutex"]}`, http.StatusBadRequest},
		{"bad only", "/v1/sweep", `{"only":["Nope"]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/sim")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sim: status = %d, want 405", resp.StatusCode)
	}
}

// TestMetricsEndpoint checks the service counters end to end.
func TestMetricsEndpoint(t *testing.T) {
	s, _, gate := gatedServer(Config{Workers: 2, ResultCacheSize: 8})
	close(gate) // no blocking needed here
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postSim(t, ts, `{"bench":"Qsort","scale":0.01}`)
	postSim(t, ts, `{"bench":"Qsort","scale":0.01}`) // cache hit

	resp, err := http.Get(ts.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"jobs_accepted 1", "jobs_completed 1", "result_cache_hits 1", "result_cache_len 1"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("metrics missing %q in:\n%s", want, raw)
		}
	}
}

// TestResultLRUBound checks the result cache honours its capacity.
func TestResultLRUBound(t *testing.T) {
	c := newResultLRU(3)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("k%d", i), i)
		if c.len() > 3 {
			t.Fatalf("len = %d > cap 3 after %d inserts", c.len(), i+1)
		}
	}
	if _, ok := c.get("k9"); !ok {
		t.Error("most recent entry evicted")
	}
	if _, ok := c.get("k0"); ok {
		t.Error("oldest entry not evicted")
	}
}
