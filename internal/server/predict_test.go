package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"syncsim/internal/api"
	"syncsim/internal/engine"
	"syncsim/internal/machine"
	"syncsim/internal/metrics"
	"syncsim/internal/predict"
)

// testModel hand-builds a tiny fitted model: one Qsort/queue cell with a
// 5% bound, calibrated (nominally) at scales 0.01-0.02. The parameter
// values are plausible but arbitrary — these tests pin the serving
// machinery, not the fit.
func testModel() *predict.Model {
	return &predict.Model{
		Version: predict.ModelVersion,
		Scales:  []float64{0.01, 0.02},
		Seeds:   []int64{1, 2},
		Cells: map[string]*predict.Cell{
			"Qsort/queue": {
				Bench: "Qsort", Model: "queue", NCPU: 12,
				Work:      predict.LinFit{B: 2.2e8},
				MissStall: predict.LinFit{B: 1.5e7},
				BusBusy:   predict.LinFit{B: 1.2e9},
				Transfers: predict.LinFit{B: 6e4},
				Straggler: 1.15,
				MaxErr:    0.01, MeanErr: 0.005, ErrBound: 0.05,
			},
		},
	}
}

// postPredict POSTs a /v1/predict body and decodes the response.
func postPredict(t *testing.T, ts *httptest.Server, body string) (api.PredictResponse, *http.Response) {
	t.Helper()
	var out api.PredictResponse
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/predict: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return out, resp
}

// TestPredictAnalyticBypassesQueue is the acceptance check for the fast
// path: an analytic answer must come straight from the fitted model —
// no admission-queue slot, no engine run, no job counters. The execution
// back end is stubbed to fail the test outright if anything reaches it.
func TestPredictAnalyticBypassesQueue(t *testing.T) {
	s := New(Config{Workers: 1, Predict: testModel(), Logf: t.Logf})
	defer s.Close()
	s.execTasks = func(ctx context.Context, tasks []engine.Task) ([]engine.TaskResult, metrics.SuiteReport, error) {
		t.Error("analytic prediction executed a machine run")
		return nil, metrics.SuiteReport{}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out, resp := postPredict(t, ts, `{"bench":"Qsort","model":"queue","scale":0.015,"mode":"analytic"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Source != "analytic" || out.Served != "model" {
		t.Errorf("source/served = %q/%q, want analytic/model", out.Source, out.Served)
	}
	if out.Sim != nil {
		t.Error("analytic response carries a simulation payload")
	}
	if out.Prediction == nil || out.Prediction.TTS <= 0 {
		t.Fatalf("no usable prediction in response: %+v", out.Prediction)
	}
	if out.Prediction.ErrBound != 0.05 {
		t.Errorf("err bound = %v, want the cell's published 0.05", out.Prediction.ErrBound)
	}
	if out.Prediction.Extrapolated {
		t.Error("scale 0.015 flagged extrapolated inside the [0.01, 0.02] envelope")
	}

	snap := s.reg.Snapshot()
	for _, counter := range []string{
		"jobs_accepted", "jobs_completed", "jobs_failed",
		"requests_coalesced", "result_cache_hits", "predict_fallback",
	} {
		if n := snap.Counters[counter]; n != 0 {
			t.Errorf("%s = %d after an analytic answer, want 0", counter, n)
		}
	}
	if n := snap.Counters["predict_analytic"]; n != 1 {
		t.Errorf("predict_analytic = %d, want 1", n)
	}
}

// TestPredictFallbackSimulates pins the slow path: simulate mode (and auto
// mode with a tolerance the cell cannot meet) runs the cycle-exact engine
// through the normal admission machinery and returns the full simulation
// payload alongside the model's (untrusted) prediction.
func TestPredictFallbackSimulates(t *testing.T) {
	s := New(Config{Workers: 1, Predict: testModel(), ResultCacheSize: -1, Logf: t.Logf})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out, resp := postPredict(t, ts, `{"bench":"Qsort","model":"queue","scale":0.01,"mode":"simulate"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Source != "simulate" || out.Served != "run" {
		t.Errorf("source/served = %q/%q, want simulate/run", out.Source, out.Served)
	}
	if out.Sim == nil || out.Sim.Result == nil || out.Sim.Result.RunTime == 0 {
		t.Fatalf("fallback carried no simulation result: %+v", out.Sim)
	}
	if out.Prediction == nil {
		t.Error("fallback dropped the model's prediction")
	}

	// Auto with an unmeetable tolerance (bound 0.05 > 0.01): same path.
	out, resp = postPredict(t, ts, `{"bench":"Qsort","model":"queue","scale":0.01,"max_error":0.01}`)
	if resp.StatusCode != http.StatusOK || out.Source != "simulate" {
		t.Errorf("strict auto: status/source = %d/%q, want 200/simulate", resp.StatusCode, out.Source)
	}

	snap := s.reg.Snapshot()
	if n := snap.Counters["jobs_accepted"]; n != 2 {
		t.Errorf("jobs_accepted = %d, want 2 (both requests simulated)", n)
	}
	if n := snap.Counters["predict_fallback"]; n != 2 {
		t.Errorf("predict_fallback = %d, want 2", n)
	}
}

// TestPredictAutoTrustsTightBound: auto mode inside the envelope with the
// default tolerance accepts the model's 5% bound and answers analytically.
func TestPredictAutoTrustsTightBound(t *testing.T) {
	s := New(Config{Workers: 1, Predict: testModel(), Logf: t.Logf})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out, resp := postPredict(t, ts, `{"bench":"Qsort","model":"queue","scale":0.012}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Source != "analytic" {
		t.Errorf("source = %q, want analytic under the default tolerance", out.Source)
	}

	// Outside the calibrated envelope the bound is not backed by data:
	// auto must fall back even though the tolerance is met on paper.
	out, resp = postPredict(t, ts, `{"bench":"Qsort","model":"queue","scale":0.2}`)
	if resp.StatusCode != http.StatusOK || out.Source != "simulate" {
		t.Errorf("extrapolated auto: status/source = %d/%q, want 200/simulate", resp.StatusCode, out.Source)
	}
	if out.Prediction == nil || !out.Prediction.Extrapolated {
		t.Errorf("extrapolated prediction not flagged: %+v", out.Prediction)
	}
}

// TestPredictErrors pins the endpoint's failure taxonomy: analytic mode
// without a fitted cell is 422 (the caller asked for something the model
// cannot honestly answer), bad modes/models/benches are 400.
func TestPredictErrors(t *testing.T) {
	s := New(Config{Workers: 1, Predict: testModel(), Logf: t.Logf})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"no fitted cell", `{"bench":"Grav","model":"queue","scale":0.01,"mode":"analytic"}`, http.StatusUnprocessableEntity},
		{"unknown mode", `{"bench":"Qsort","model":"queue","scale":0.01,"mode":"psychic"}`, http.StatusBadRequest},
		{"unknown model", `{"bench":"Qsort","model":"hle","scale":0.01}`, http.StatusBadRequest},
		{"unknown bench", `{"bench":"Nope","model":"queue","scale":0.01}`, http.StatusBadRequest},
		{"negative tolerance", `{"bench":"Qsort","model":"queue","scale":0.01,"max_error":-1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, resp := postPredict(t, ts, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestPredictNoModelLoaded: with no -predict-model, analytic mode is 422
// and auto mode silently simulates — the endpoint stays useful.
func TestPredictNoModelLoaded(t *testing.T) {
	s := New(Config{Workers: 1, Logf: t.Logf})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, resp := postPredict(t, ts, `{"bench":"Qsort","model":"queue","scale":0.01,"mode":"analytic"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("analytic without a model: status = %d, want 422", resp.StatusCode)
	}
	out, resp := postPredict(t, ts, `{"bench":"Qsort","model":"queue","scale":0.01}`)
	if resp.StatusCode != http.StatusOK || out.Source != "simulate" {
		t.Errorf("auto without a model: status/source = %d/%q, want 200/simulate", resp.StatusCode, out.Source)
	}
	if out.Prediction != nil {
		t.Errorf("no model loaded but a prediction came back: %+v", out.Prediction)
	}
}

// TestCapabilities pins the vocabulary endpoint: the full accepted name
// lists, GET-only, predict envelope present exactly when a model is
// loaded, and availability while draining.
func TestCapabilities(t *testing.T) {
	s := New(Config{Workers: 1, Predict: testModel(), Logf: t.Logf})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() (api.CapabilitiesResponse, *http.Response) {
		t.Helper()
		var out api.CapabilitiesResponse
		resp, err := http.Get(ts.URL + "/v1/capabilities")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return out, resp
	}

	caps, resp := get()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if len(caps.Benchmarks) != 6 || caps.Benchmarks[0].Name != "Grav" || caps.Benchmarks[0].NCPU != 10 {
		t.Errorf("benchmarks = %+v, want the six suite entries led by Grav/10", caps.Benchmarks)
	}
	if len(caps.Models) != 3 || len(caps.Locks) != 4 || len(caps.Consistency) != 2 {
		t.Errorf("vocabulary sizes = %d/%d/%d, want 3/4/2 models/locks/cons",
			len(caps.Models), len(caps.Locks), len(caps.Consistency))
	}
	if !reflect.DeepEqual(caps.Schedulers, machine.SchedulerNames()) {
		t.Errorf("schedulers = %v, want the machine registry %v (no hand-maintained drift)",
			caps.Schedulers, machine.SchedulerNames())
	}
	if caps.Predict == nil || caps.Predict.Cells != 1 || caps.Predict.MaxErrBound != 0.05 {
		t.Errorf("predict capability = %+v, want 1 cell with bound 0.05", caps.Predict)
	}

	if resp, err := http.Post(ts.URL+"/v1/capabilities", "application/json", strings.NewReader("{}")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST: status = %d, want 405", resp.StatusCode)
		}
	}

	// Metadata stays available while draining (jobs do not).
	s.BeginDrain()
	if _, resp := get(); resp.StatusCode != http.StatusOK {
		t.Errorf("draining: status = %d, want 200", resp.StatusCode)
	}

	// And without a loaded model the predict envelope is absent.
	s2 := New(Config{Workers: 1})
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var caps2 api.CapabilitiesResponse
	r2, err := http.Get(ts2.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&caps2); err != nil {
		t.Fatal(err)
	}
	if caps2.Predict != nil {
		t.Errorf("no model loaded but predict capability advertised: %+v", caps2.Predict)
	}
}
