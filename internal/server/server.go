// Package server is the resident simulation service behind cmd/syncsimd:
// an HTTP front end that runs simulation and sweep jobs on the existing
// internal/engine worker pool and returns machine.Result /
// metrics.SuiteReport JSON.
//
// The production behaviours are the point of the package:
//
//   - identical in-flight requests are coalesced single-flight onto one
//     execution, and completed payloads are kept in a bounded LRU result
//     cache, so a thundering herd of equal queries costs one simulation;
//   - admission is a bounded two-stage queue (running + waiting) that
//     sheds excess load with 429 + Retry-After instead of growing without
//     bound;
//   - every job runs under a context with a server-side timeout, cancelled
//     when the last interested client disconnects, and trace generation is
//     memoised in a capacity-bounded engine.TraceCache;
//   - shutdown is graceful: BeginDrain stops admissions while in-flight
//     jobs run to completion;
//   - /healthz, /metrics (expvar-style counters and gauges) and
//     /debug/pprof expose the service's state.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"syncsim/internal/api"
	"syncsim/internal/chaos"
	"syncsim/internal/core"
	"syncsim/internal/engine"
	"syncsim/internal/fleet/store"
	"syncsim/internal/machine"
	"syncsim/internal/metrics"
	"syncsim/internal/predict"
	"syncsim/internal/replay"
)

// Config parameterises a Server. Zero values select production defaults.
type Config struct {
	// Workers bounds concurrently executing jobs; 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting for a worker beyond those running;
	// requests past workers+depth are shed with 429. 0 selects 64;
	// negative means no waiting room.
	QueueDepth int
	// JobTimeout caps one job's run (queue wait included); 0 selects 2m.
	JobTimeout time.Duration
	// ResultCacheSize bounds the completed-payload LRU; 0 selects 256;
	// negative disables result caching.
	ResultCacheSize int
	// TraceCacheCap bounds the trace cache entries; 0 selects 64;
	// negative means unbounded (the CLI behaviour — not recommended for
	// a resident service).
	TraceCacheCap int
	// MaxBodyBytes caps request bodies; 0 selects 1 MiB.
	MaxBodyBytes int64
	// StallTimeout arms the per-job watchdog: a job whose scheduler
	// heartbeat stalls for this long is aborted (504) without touching the
	// process. 0 selects 30s; negative disables the watchdog.
	StallTimeout time.Duration
	// Chaos, when non-nil, is the fault-injection plane consulted at job
	// boundaries (see internal/chaos and the syncsimd -chaos flag). Nil —
	// the production default — is permanently inert.
	Chaos *chaos.Plane
	// Predict, when non-nil, is the fitted analytic prediction model
	// served by POST /v1/predict's fast path (see internal/predict and
	// the syncsimd -predict-model flag). Nil: analytic mode answers 422
	// and auto mode always falls back to simulation.
	Predict *predict.Model
	// Store, when non-nil, is the fleet's shared L2 result cache (see
	// internal/fleet/store and the syncsimd -store flag): sim and sweep
	// payloads missing from the in-memory L1 are looked up here before
	// running, and completed payloads are written back, so any fleet
	// member can serve a result any other member computed. Nil — the
	// standalone default — disables the tier.
	Store store.Store
	// Quotas, when non-empty, enforces per-tenant admission budgets (see
	// Quota and the syncsimd -quota flag): a job request whose sanitized
	// X-Tenant label has an exhausted token bucket is rejected 429 with a
	// tenant-scoped Retry-After before it touches the queue. Tenants not
	// in the table — and untenanted requests — are never quota-rejected.
	Quotas map[string]Quota
	// QuotaNow is the quota clock; nil selects time.Now (tests inject a
	// fake to make token refill deterministic).
	QuotaNow func() time.Time
	// Logf receives operational log lines (panic incidents with stacks).
	// Nil selects log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = 64
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 2 * time.Minute
	}
	switch {
	case c.ResultCacheSize == 0:
		c.ResultCacheSize = 256
	case c.ResultCacheSize < 0:
		c.ResultCacheSize = 0
	}
	switch {
	case c.TraceCacheCap == 0:
		c.TraceCacheCap = 64
	case c.TraceCacheCap < 0:
		c.TraceCacheCap = 0
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Server is the simulation service. Create one with New, mount Handler on
// an http.Server, and shut down with BeginDrain + Drain + Close.
type Server struct {
	cfg        Config
	traceCache *engine.TraceCache
	eng        *engine.Engine
	adm        *admission
	flights    *flightGroup
	results    *resultLRU
	store      store.Store

	reg       *metrics.Registry
	accepted  *metrics.Counter // jobs that reached a worker slot
	rejected  *metrics.Counter // requests shed by the admission queue
	completed *metrics.Counter // jobs that finished successfully
	failed    *metrics.Counter // jobs that errored (incl. timeout/cancel)
	coalesced *metrics.Counter // requests served by joining another's flight
	cacheHits *metrics.Counter // requests served from the result LRU
	storeHits *metrics.Counter // requests served from the shared L2 store
	panicked  *metrics.Counter // jobs that panicked (recovered; 500 + incident)
	wedged    *metrics.Counter // jobs aborted by the liveness watchdog
	throttled *metrics.Counter // requests rejected 429 by per-tenant quotas
	simCycles *metrics.Counter // total simulated machine cycles
	schedIt   *metrics.Counter // total scheduler iterations (Result.Sched)
	genTime   *metrics.Timer
	simTime   *metrics.Timer

	predAnalytic *metrics.Counter // /v1/predict answered by the fitted model
	predFallback *metrics.Counter // /v1/predict fell through to simulation

	chaos   *chaos.Plane
	predict *predict.Model
	quota   *QuotaSet // nil admits everything
	logf    func(format string, args ...any)

	// tenants bounds the cardinality of per-tenant request counters:
	// the first tenantCap distinct (sanitised) tenant names get their
	// own counter, later ones share "other".
	tenantMu sync.Mutex
	tenants  map[string]*metrics.Counter

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool
	inflight   atomic.Int64 // job requests currently inside a handler

	// execTasks and execSuite are the execution back ends; tests swap them
	// to count runs and to gate completion.
	execTasks func(context.Context, []engine.Task) ([]engine.TaskResult, metrics.SuiteReport, error)
	execSuite func(context.Context, core.Options) ([]*core.Outcome, error)

	mux *http.ServeMux
}

// New builds a Server ready to serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg, chaos: cfg.Chaos, predict: cfg.Predict, logf: cfg.Logf,
		store: cfg.Store, tenants: make(map[string]*metrics.Counter),
		quota: NewQuotaSet(cfg.Quotas, cfg.QuotaNow),
	}
	s.traceCache = engine.NewTraceCacheCap(cfg.TraceCacheCap)
	s.eng = engine.New(engine.Config{Workers: cfg.Workers, Cache: s.traceCache, Chaos: cfg.Chaos})
	s.adm = newAdmission(cfg.Workers, cfg.QueueDepth)
	s.flights = newFlightGroup()
	s.results = newResultLRU(cfg.ResultCacheSize)

	s.reg = metrics.New()
	s.accepted = s.reg.Counter("jobs_accepted")
	s.rejected = s.reg.Counter("jobs_rejected")
	s.completed = s.reg.Counter("jobs_completed")
	s.failed = s.reg.Counter("jobs_failed")
	s.coalesced = s.reg.Counter("requests_coalesced")
	s.cacheHits = s.reg.Counter("result_cache_hits")
	s.storeHits = s.reg.Counter("result_store_hits")
	s.panicked = s.reg.Counter("jobs_panicked")
	s.wedged = s.reg.Counter("jobs_wedged")
	s.throttled = s.reg.Counter("jobs_throttled")
	s.simCycles = s.reg.Counter("sim_cycles_total")
	s.schedIt = s.reg.Counter("sched_iterations_total")
	s.genTime = s.reg.Timer("phase_generate")
	s.simTime = s.reg.Timer("phase_simulate")
	s.predAnalytic = s.reg.Counter("predict_analytic")
	s.predFallback = s.reg.Counter("predict_fallback")

	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.execTasks = s.eng.Run
	s.execSuite = core.RunSuiteCtx

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/sim", s.handleSim)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/v1/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.Handle("/metrics", metrics.Handler(s.reg, s.gauges))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the service's HTTP handler: the route mux behind a
// recover barrier, so a panic that escapes any handler (the job layer has
// its own barrier inside the flight) is answered with a 500 + incident ID
// instead of tearing down the connection with no response.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.writeError(w, r, engine.Recovered(r.Method+" "+r.URL.Path, v))
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// TraceCache exposes the server's bounded trace cache (for wiring and
// tests).
func (s *Server) TraceCache() *engine.TraceCache { return s.traceCache }

// BeginDrain flips the server into draining mode: /healthz turns 503 so
// load balancers stop routing here, and new jobs are refused, while jobs
// already admitted run to completion. Safe to call more than once.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of job requests currently being served.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Drain blocks until every in-flight job request has finished or ctx
// expires. Call after BeginDrain; pair with http.Server.Shutdown, which
// waits for the connections themselves.
func (s *Server) Drain(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain: %d job(s) still in flight: %w", s.inflight.Load(), ctx.Err())
		case <-tick.C:
		}
	}
}

// Close cancels the server's base context, aborting any job still running.
// Call last, after Drain.
func (s *Server) Close() { s.baseCancel() }

// gauges samples the instantaneous values for /metrics.
func (s *Server) gauges() map[string]int64 {
	tc := s.traceCache.Stats()
	g := map[string]int64{
		"queue_depth":          int64(s.adm.queued()),
		"jobs_running":         int64(s.adm.running()),
		"inflight_requests":    s.inflight.Load(),
		"result_cache_len":     int64(s.results.len()),
		"trace_cache_len":      int64(tc.Len),
		"trace_cache_cap":      int64(tc.Cap),
		"trace_cache_hit":      tc.Hits,
		"trace_cache_miss":     tc.Misses,
		"trace_cache_evicted":  tc.Evictions,
		"draining":             boolGauge(s.draining.Load()),
		"chaos_enabled":        boolGauge(s.chaos != nil),
		"quota_enforced":       boolGauge(s.quota != nil),
		"predict_model_loaded": boolGauge(s.predict != nil),
		"result_store_enabled": boolGauge(s.store != nil),
	}
	for pt, fired := range s.chaos.Snapshot() {
		g["chaos_fired_"+pt] = int64(fired)
	}
	return g
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Retry-After bounds: the adaptive hint never strays outside [min, max]
// seconds regardless of queue pressure or jitter (pinned by
// TestRetryAfterBounds).
const (
	minRetryAfterSec = 1
	maxRetryAfterSec = 30
)

// retryAfterSeconds derives a Retry-After hint from queue pressure: an
// idle waiting room suggests ~1s, a saturated one pushes clients out
// toward 16s, and ±25% full jitter (u uniform in [0,1)) decorrelates a
// herd of rejected clients so they do not return in lockstep.
func retryAfterSeconds(queued, capacity int, u float64) int {
	if capacity < 1 {
		capacity = 1
	}
	frac := float64(queued) / float64(capacity)
	if frac > 1 {
		frac = 1
	}
	base := 1 + frac*15          // 1..16s as the queue fills
	sec := base * (0.75 + 0.5*u) // ±25% full jitter
	n := int(math.Round(sec))
	if n < minRetryAfterSec {
		n = minRetryAfterSec
	}
	if n > maxRetryAfterSec {
		n = maxRetryAfterSec
	}
	return n
}

// retryAfterHint renders the adaptive hint for response headers.
func (s *Server) retryAfterHint() string {
	return strconv.Itoa(retryAfterSeconds(s.adm.queued(), s.cfg.QueueDepth, rand.Float64()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfterHint())
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// decodeBody decodes a JSON request body with a size cap, rejecting
// trailing garbage.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// admitJobRequest performs the checks shared by the job endpoints and, on
// success, registers the request as in-flight. The returned func must be
// deferred.
func (s *Server) admitJobRequest(w http.ResponseWriter, r *http.Request) (func(), bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return nil, false
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfterHint())
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return nil, false
	}
	tenant := sanitizeTenant(r.Header.Get(api.HeaderTenant))
	s.countTenant(tenant)
	// Quota enforcement sits before the global admission queue on
	// purpose: one tenant's retry storm must burn its own bucket, not a
	// queue slot every other tenant is waiting for. The Retry-After here
	// is tenant-scoped (this bucket's refill time), unlike the 429s the
	// queue itself sheds.
	if wait, ok := s.quota.Admit(tenant); !ok {
		s.throttled.Inc()
		s.rejected.Inc()
		w.Header().Set(api.HeaderRetryAfter, retryAfterHeader(wait))
		http.Error(w, fmt.Sprintf("tenant %q over quota; retry later", tenant), http.StatusTooManyRequests)
		return nil, false
	}
	s.inflight.Add(1)
	return func() { s.inflight.Add(-1) }, true
}

// tenantCap bounds how many distinct tenants get their own /metrics
// counter; later arrivals share tenant_requests_other so a header-spraying
// client cannot grow the registry without bound.
const tenantCap = 64

// countTenant attributes one admitted job request to its X-Tenant header
// under tenant_requests_<tenant>. No header, no counter.
func (s *Server) countTenant(raw string) {
	t := sanitizeTenant(raw)
	if t == "" {
		return
	}
	s.tenantMu.Lock()
	c, ok := s.tenants[t]
	if !ok {
		if len(s.tenants) >= tenantCap {
			t = "other"
		}
		if c, ok = s.tenants[t]; !ok {
			c = s.reg.Counter("tenant_requests_" + t)
			s.tenants[t] = c
		}
	}
	s.tenantMu.Unlock()
	c.Inc()
}

// sanitizeTenant folds an arbitrary header value into a metric-name-safe
// slug: lowercase [a-z0-9_-], everything else replaced by '_', at most 32
// bytes. Empty in, empty out.
func sanitizeTenant(raw string) string {
	raw = strings.ToLower(strings.TrimSpace(raw))
	if raw == "" {
		return ""
	}
	var b strings.Builder
	for i, r := range raw {
		if i >= 32 {
			break
		}
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	done, ok := s.admitJobRequest(w, r)
	if !ok {
		return
	}
	defer done()

	var req SimRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, r, fmt.Errorf("%w: %w", errBadRequest, err))
		return
	}
	job, err := normalizeSim(req)
	if err != nil {
		s.writeError(w, r, fmt.Errorf("%w: %w", errBadRequest, err))
		return
	}

	payload, served, err := s.simResult(r, job)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, SimResponse{SimPayload: payload, Served: served})
}

// simResult serves one validated simulation job through the shared
// machinery — result cache, single-flight coalescing, then a real run —
// and reports how it was served (cache/coalesced/run). Both /v1/sim and
// /v1/predict's simulation fallback go through here.
func (s *Server) simResult(r *http.Request, job simJob) (*SimPayload, string, error) {
	if p, ok := s.results.get(job.key); ok {
		s.cacheHits.Inc()
		return p.(*SimPayload), "cache", nil
	}
	if p := storeGet[SimPayload](s, job.key); p != nil {
		return p, "store", nil
	}
	val, shared, err := s.flights.do(r.Context(), s.baseCtx, s.cfg.JobTimeout, job.key,
		func(jobCtx context.Context) (any, error) { return s.runSim(jobCtx, job) })
	if err != nil {
		return nil, "", err
	}
	if shared {
		s.coalesced.Inc()
		return val.(*SimPayload), "coalesced", nil
	}
	return val.(*SimPayload), "run", nil
}

// runSim executes one validated simulation job on the engine pool, under
// the chaos plane's job-boundary faults and the liveness watchdog.
func (s *Server) runSim(ctx context.Context, job simJob) (*SimPayload, error) {
	if s.chaos.Should(chaos.QueueFull) {
		return nil, errBusy
	}
	if err := s.adm.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.adm.release()
	s.accepted.Inc()
	s.chaos.Sleep(ctx)
	ctx, stopStorm := s.chaos.WrapCancel(ctx)
	defer stopStorm()
	wctx, stopWatch := s.watchJob(ctx)
	defer stopWatch()

	results, rep, err := s.execTasks(wctx, []engine.Task{job.task()})
	if err != nil {
		s.failed.Inc()
		return nil, resolveWedged(wctx, err)
	}
	s.recordSuite(rep)
	s.completed.Inc()
	tr := results[0]
	p := &SimPayload{Request: job.req, Ideal: tr.Ideal, Result: tr.Result, Report: tr.Report}
	s.results.put(job.key, p)
	s.storePut(job.key, p)
	return p, nil
}

// storeGet consults the shared L2 store on an L1 miss. A hit is promoted
// into L1 so the next identical request is answered without the disk.
// Damaged blobs are treated as misses (the job just runs).
func storeGet[P any](s *Server, key string) *P {
	if s.store == nil {
		return nil
	}
	blob, ok := s.store.Get(key)
	if !ok {
		return nil
	}
	p := new(P)
	if err := json.Unmarshal(blob, p); err != nil {
		s.logf("server: L2 store entry for %q is damaged: %v", key, err)
		return nil
	}
	s.storeHits.Inc()
	s.results.put(key, p)
	return p
}

// storePut writes a completed payload back to the shared L2 store,
// best-effort.
func (s *Server) storePut(key string, payload any) {
	if s.store == nil {
		return
	}
	blob, err := json.Marshal(payload)
	if err != nil {
		return
	}
	s.store.Put(key, blob)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	done, ok := s.admitJobRequest(w, r)
	if !ok {
		return
	}
	defer done()

	var req api.AnalyzeRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, r, fmt.Errorf("%w: %w", errBadRequest, err))
		return
	}
	job, err := normalizeAnalyze(req)
	if err != nil {
		s.writeError(w, r, fmt.Errorf("%w: %w", errBadRequest, err))
		return
	}

	if p, ok := s.results.get(job.key); ok {
		s.cacheHits.Inc()
		writeJSON(w, http.StatusOK, api.AnalyzeResponse{AnalyzePayload: p.(*api.AnalyzePayload), Served: "cache"})
		return
	}
	val, shared, err := s.flights.do(r.Context(), s.baseCtx, s.cfg.JobTimeout, job.key,
		func(jobCtx context.Context) (any, error) { return s.runAnalyze(jobCtx, job) })
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	served := "run"
	if shared {
		served = "coalesced"
		s.coalesced.Inc()
	}
	writeJSON(w, http.StatusOK, api.AnalyzeResponse{AnalyzePayload: val.(*api.AnalyzePayload), Served: served})
}

// runAnalyze executes one validated what-if job: a baseline run, a
// determinism re-run, and one replay per perturbation, all against clones
// of one cached trace. The whole bundle occupies a single worker slot —
// it is one job from admission's point of view, like a sweep.
func (s *Server) runAnalyze(ctx context.Context, job analyzeJob) (*api.AnalyzePayload, error) {
	if s.chaos.Should(chaos.QueueFull) {
		return nil, errBusy
	}
	if err := s.adm.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.adm.release()
	s.accepted.Inc()
	s.chaos.Sleep(ctx)
	ctx, stopStorm := s.chaos.WrapCancel(ctx)
	defer stopStorm()
	wctx, stopWatch := s.watchJob(ctx)
	defer stopWatch()

	payload, err := replay.Analyze(wctx, replay.Job{
		Prog:    job.prog,
		Params:  job.params,
		Config:  job.cfg,
		Request: job.req,
		Cache:   s.traceCache,
	})
	if err != nil {
		s.failed.Inc()
		return nil, resolveWedged(wctx, err)
	}
	s.completed.Inc()
	s.results.put(job.key, payload)
	return payload, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	done, ok := s.admitJobRequest(w, r)
	if !ok {
		return
	}
	defer done()

	var req SweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, r, fmt.Errorf("%w: %w", errBadRequest, err))
		return
	}
	job, err := normalizeSweep(req)
	if err != nil {
		s.writeError(w, r, fmt.Errorf("%w: %w", errBadRequest, err))
		return
	}

	if p, ok := s.results.get(job.key); ok {
		s.cacheHits.Inc()
		writeJSON(w, http.StatusOK, SweepResponse{SweepPayload: p.(*SweepPayload), Served: "cache"})
		return
	}
	if p := storeGet[SweepPayload](s, job.key); p != nil {
		writeJSON(w, http.StatusOK, SweepResponse{SweepPayload: p, Served: "store"})
		return
	}

	val, shared, err := s.flights.do(r.Context(), s.baseCtx, s.cfg.JobTimeout, job.key,
		func(jobCtx context.Context) (any, error) { return s.runSweep(jobCtx, job) })
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	served := "run"
	if shared {
		served = "coalesced"
		s.coalesced.Inc()
	}
	writeJSON(w, http.StatusOK, SweepResponse{SweepPayload: val.(*SweepPayload), Served: served})
}

// runSweep executes one validated sweep job: the full benchmark × model
// matrix through core, sharing the server's bounded trace cache so sweeps
// and single simulations memoise the same traces.
func (s *Server) runSweep(ctx context.Context, job sweepJob) (*SweepPayload, error) {
	if s.chaos.Should(chaos.QueueFull) {
		return nil, errBusy
	}
	if err := s.adm.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.adm.release()
	s.accepted.Inc()
	s.chaos.Sleep(ctx)
	ctx, stopStorm := s.chaos.WrapCancel(ctx)
	defer stopStorm()
	wctx, stopWatch := s.watchJob(ctx)
	defer stopWatch()

	var suiteRep metrics.SuiteReport
	outs, err := s.execSuite(wctx, core.Options{
		Scale:   job.req.Scale,
		Seed:    job.req.Seed,
		Models:  job.models,
		Select:  job.sel,
		Workers: s.cfg.Workers,
		Metrics: true,
		OnReport: func(r metrics.SuiteReport) {
			suiteRep = r
		},
		Cache: s.traceCache,
		Chaos: s.chaos,
	})
	if err != nil {
		s.failed.Inc()
		return nil, resolveWedged(wctx, err)
	}
	s.recordSuite(suiteRep)
	s.completed.Inc()

	p := &SweepPayload{Request: job.req, Report: suiteRep}
	for _, o := range outs {
		out := SweepOutcome{
			Name:    o.Name,
			Params:  o.Params,
			Ideal:   o.Ideal,
			Report:  o.Report,
			Results: make(map[string]*machine.Result, len(o.Results)),
		}
		for m, res := range o.Results {
			out.Results[m.String()] = res
		}
		p.Outcomes = append(p.Outcomes, out)
	}
	s.results.put(job.key, p)
	s.storePut(job.key, p)
	return p, nil
}

// recordSuite folds one engine run's suite report into the service-level
// metrics.
func (s *Server) recordSuite(rep metrics.SuiteReport) {
	s.simCycles.Add(int64(rep.SimCycles))
	s.schedIt.Add(int64(rep.SchedIters))
	if rep.Generate > 0 {
		s.genTime.Observe(rep.Generate)
	}
	if rep.Simulate > 0 {
		s.simTime.Observe(rep.Simulate)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}
