package server

import (
	"container/list"
	"context"
	"sync"
	"time"

	"syncsim/internal/engine"
)

// runJobRecovered executes one job function behind a recover barrier,
// converting a panic into a *engine.PanicError keyed by the job.
func runJobRecovered(key string, ctx context.Context, fn func(context.Context) (any, error)) (val any, err error) {
	defer func() {
		if v := recover(); v != nil {
			val, err = nil, engine.Recovered(key, v)
		}
	}()
	return fn(ctx)
}

// flight is one in-progress job that any number of identical requests
// share. The leader (the request that created the flight) executes the
// job; followers park on done. The job runs under its own context, NOT the
// leader's: it stays alive while anyone still wants the answer and is
// cancelled only when the last interested client disconnects — so a
// leader's dropped connection cannot abort a result that N-1 followers
// are waiting for.
type flight struct {
	done chan struct{} // closed once val/err are final
	val  any
	err  error

	mu      sync.Mutex
	waiters int // clients still interested; 0 → cancel the job
	cancel  context.CancelFunc
}

// leave records a departing waiter; the last one out cancels the job.
func (f *flight) leave() {
	f.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	f.mu.Unlock()
	if last {
		f.cancel()
	}
}

func (f *flight) join() {
	f.mu.Lock()
	f.waiters++
	f.mu.Unlock()
}

// flightGroup is the single-flight map: one flight per key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// do executes fn once per key among concurrent callers. The first caller
// becomes the leader and runs fn inline under a fresh job context derived
// from base (server lifetime) with the given timeout; later callers
// coalesce onto the same flight. shared reports whether this caller
// coalesced. callerCtx governs only this caller's wait: when it dies the
// caller leaves (possibly cancelling the job if it was the last one) and
// returns callerCtx's error.
func (g *flightGroup) do(callerCtx, base context.Context, timeout time.Duration, key string, fn func(context.Context) (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		f.join()
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-callerCtx.Done():
			f.leave()
			return nil, true, callerCtx.Err()
		}
	}

	var (
		jobCtx context.Context
		cancel context.CancelFunc
	)
	if timeout > 0 {
		jobCtx, cancel = context.WithTimeout(base, timeout)
	} else {
		jobCtx, cancel = context.WithCancel(base)
	}
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.m[key] = f
	g.mu.Unlock()

	// If the leader's client disconnects mid-run, count it out; the job
	// keeps running as long as any follower is still waiting.
	stop := context.AfterFunc(callerCtx, f.leave)

	// The panic barrier is part of the flight contract: a panicking job
	// must still finish its flight (close done, vacate the key) or every
	// follower would hang forever and the key would be poisoned. The panic
	// becomes an ordinary *engine.PanicError that all waiters receive.
	f.val, f.err = runJobRecovered(key, jobCtx, fn)

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	if stop() {
		// The leader's watcher never fired; drop its interest explicitly
		// so the job context is always cancelled (releases timers).
		f.leave()
	}
	return f.val, false, f.err
}

// resultLRU memoises completed job payloads, bounded by entry count. The
// values are immutable-by-convention payload pointers; a hit serves a
// previously computed simulation in microseconds.
type resultLRU struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*list.Element
	order *list.List // of lruEntry; front = most recent
}

type lruEntry struct {
	key string
	val any
}

func newResultLRU(capacity int) *resultLRU {
	if capacity < 0 {
		capacity = 0
	}
	return &resultLRU{cap: capacity, m: make(map[string]*list.Element), order: list.New()}
}

func (c *resultLRU) get(key string) (any, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(lruEntry).val, true
}

func (c *resultLRU) put(key string, val any) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value = lruEntry{key, val}
		c.order.MoveToFront(el)
		return
	}
	c.m[key] = c.order.PushFront(lruEntry{key, val})
	for len(c.m) > c.cap {
		back := c.order.Back()
		delete(c.m, back.Value.(lruEntry).key)
		c.order.Remove(back)
	}
}

func (c *resultLRU) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
