package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"syncsim/internal/api"
)

func postAnalyze(t *testing.T, ts *httptest.Server, body string) (api.AnalyzeResponse, *http.Response) {
	t.Helper()
	var out api.AnalyzeResponse
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("POST /v1/analyze: %v", err)
		return out, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read body: %v", err)
		return out, resp
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Errorf("decode %q: %v", raw, err)
		}
	}
	return out, resp
}

// The full HTTP round trip of the what-if endpoint: a TTS Qsort baseline
// must come back with its determinism proof, every requested perturbation,
// and the lock=queue flag the paper predicts. A repeat of the identical
// request must be served from the result cache.
func TestEndToEndAnalyze(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"bench":"Qsort","scale":0.05,"ncpu":8,"seed":1,"lock":"tts"}`
	got, resp := postAnalyze(t, ts, body)
	if resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %v", resp)
	}
	if got.Served != "run" {
		t.Fatalf("served = %q, want run", got.Served)
	}
	if !got.ReplayIdentical {
		t.Fatal("baseline replay not bit-identical over HTTP")
	}
	if len(got.Perturbations) != 5 {
		t.Fatalf("perturbations = %d, want 5", len(got.Perturbations))
	}
	found := false
	for _, f := range got.Flagged {
		if f.Variant == "lock=queue" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lock=queue not among flagged variants: %+v", got.Flagged)
	}

	again, _ := postAnalyze(t, ts, body)
	if again.Served != "cache" {
		t.Fatalf("repeat served = %q, want cache", again.Served)
	}
	if again.BaselineRunTime != got.BaselineRunTime {
		t.Fatal("cached payload differs from original")
	}
}

func TestAnalyzeValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{}`, // missing bench
		`{"bench":"Qsort","perturb":["nope"]}`,
		`{"bench":"Qsort","threshold":1.5}`,
		`{"bench":"Qsort","lock":"bogus"}`,
	} {
		_, resp := postAnalyze(t, ts, body)
		if resp == nil || resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %v, want 400", body, resp.StatusCode)
		}
	}
}

// Capabilities must advertise the analyze vocabulary.
func TestCapabilitiesAdvertiseAnalyze(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var caps api.CapabilitiesResponse
	if err := json.NewDecoder(resp.Body).Decode(&caps); err != nil {
		t.Fatal(err)
	}
	if caps.Analyze == nil {
		t.Fatal("capabilities missing analyze")
	}
	if len(caps.Analyze.Perturbations) != 3 || caps.Analyze.DefaultThreshold != 0.5 {
		t.Fatalf("analyze capability = %+v", caps.Analyze)
	}
}
