package server

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Quota is one tenant's admission budget: a token bucket refilled at RPS
// tokens per second up to Burst. Each admitted job request spends one
// token; an empty bucket answers 429 with a tenant-scoped Retry-After.
type Quota struct {
	// RPS is the sustained refill rate in requests per second (> 0).
	RPS float64
	// Burst is the bucket capacity — how many requests a tenant may
	// front-load after an idle spell (≥ 1).
	Burst int
}

// ParseQuotas parses a repeatable `-quota tenant=rps:burst` flag plane
// into a quota table keyed by sanitized tenant label (the same
// sanitisation applied to the X-Tenant header, so the flag matches the
// wire whatever the spelling). Burst may be omitted (`tenant=rps`), in
// which case it defaults to ceil(rps), never below 1.
func ParseQuotas(specs []string) (map[string]Quota, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	out := make(map[string]Quota, len(specs))
	for _, spec := range specs {
		name, rest, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("quota %q: want tenant=rps:burst", spec)
		}
		tenant := sanitizeTenant(name)
		if tenant == "" {
			return nil, fmt.Errorf("quota %q: empty tenant", spec)
		}
		rpsStr, burstStr, hasBurst := strings.Cut(rest, ":")
		rps, err := strconv.ParseFloat(rpsStr, 64)
		if err != nil || rps <= 0 || math.IsInf(rps, 0) {
			return nil, fmt.Errorf("quota %q: rps must be a positive number", spec)
		}
		burst := int(math.Ceil(rps))
		if hasBurst {
			if burst, err = strconv.Atoi(burstStr); err != nil || burst < 1 {
				return nil, fmt.Errorf("quota %q: burst must be a positive integer", spec)
			}
		}
		if burst < 1 {
			burst = 1
		}
		if _, dup := out[tenant]; dup {
			return nil, fmt.Errorf("quota %q: tenant %q configured twice", spec, tenant)
		}
		out[tenant] = Quota{RPS: rps, Burst: burst}
	}
	return out, nil
}

// tenantBucket is one tenant's live token bucket.
type tenantBucket struct {
	quota  Quota
	tokens float64
	last   time.Time
}

// QuotaSet enforces a quota table. Tenants without a configured quota —
// including the empty (untenanted) label — are always admitted: quotas
// bound the tenants the operator named, they do not gate the world (the
// global admission queue still sheds aggregate overload). Safe for
// concurrent use.
type QuotaSet struct {
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*tenantBucket
}

// NewQuotaSet builds an enforcement set over the table (nil/empty table
// → nil set; a nil *QuotaSet admits everything). now is the clock; nil
// selects time.Now (tests inject a fake).
func NewQuotaSet(quotas map[string]Quota, now func() time.Time) *QuotaSet {
	if len(quotas) == 0 {
		return nil
	}
	if now == nil {
		now = time.Now
	}
	s := &QuotaSet{now: now, buckets: make(map[string]*tenantBucket, len(quotas))}
	t0 := now()
	for tenant, q := range quotas {
		// Buckets start full: a freshly booted server owes every tenant
		// its burst, not a cold start.
		s.buckets[tenant] = &tenantBucket{quota: q, tokens: float64(q.Burst), last: t0}
	}
	return s
}

// Admit spends one token from the tenant's bucket. ok=false means the
// tenant is over quota; retryAfter is how long until the bucket refills
// one whole token — the tenant-scoped Retry-After hint (other tenants
// and the untenanted are unaffected, which is the point).
func (s *QuotaSet) Admit(tenant string) (retryAfter time.Duration, ok bool) {
	if s == nil {
		return 0, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, bound := s.buckets[tenant]
	if !bound {
		return 0, true
	}
	now := s.now()
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * b.quota.RPS
		if max := float64(b.quota.Burst); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / b.quota.RPS
	return time.Duration(need * float64(time.Second)), false
}

// TenantLabel folds a raw X-Tenant header value into the sanitized label
// quotas and per-tenant counters are keyed by (lowercase [a-z0-9_-], ≤32
// bytes, empty stays empty). Exported for the fleet coordinator, which
// must agree with the backends about which bucket a header lands in.
func TenantLabel(raw string) string { return sanitizeTenant(raw) }

// QuotaRetryAfter renders a quota Retry-After duration as whole seconds,
// rounded up and floored at 1 (a 0 would invite an immediate retry of a
// request just rejected for being too frequent).
func QuotaRetryAfter(d time.Duration) string { return retryAfterHeader(d) }

// retryAfterHeader renders a Retry-After duration as whole seconds,
// rounded up and floored at 1 (a 0 would invite an immediate retry of a
// request just rejected for being too frequent).
func retryAfterHeader(d time.Duration) string {
	sec := int(math.Ceil(d.Seconds()))
	if sec < 1 {
		sec = 1
	}
	return strconv.Itoa(sec)
}
