package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"syncsim/internal/api"
	"syncsim/internal/core"
	"syncsim/internal/fleet/store"
	"syncsim/internal/machine"
	"syncsim/internal/workload/suite"
)

// TestPlanMatchesCoreModels pins plan.go's model → lock/cons wire mapping
// against core.Model.MachineConfig: a cell request built from modelWire
// must normalise to the exact machine.Config the sweep path hands the
// engine for that model. If core ever changes a model's configuration,
// this fails before the fleet starts returning subtly different sweeps.
func TestPlanMatchesCoreModels(t *testing.T) {
	coreModels := map[string]core.Model{
		"queue": core.ModelQueue,
		"tts":   core.ModelTTS,
		"wo":    core.ModelWO,
	}
	if len(coreModels) != len(modelWire) {
		t.Fatalf("modelWire has %d entries, core has %d models", len(modelWire), len(coreModels))
	}
	for name, m := range coreModels {
		w, ok := modelWire[name]
		if !ok {
			t.Fatalf("modelWire missing %q", name)
		}
		job, err := normalizeSim(SimRequest{Bench: "Qsort", Lock: w.lock, Cons: w.cons})
		if err != nil {
			t.Fatalf("model %s: %v", name, err)
		}
		want := m.MachineConfig(machine.DefaultConfig())
		if !reflect.DeepEqual(job.cfg, want) {
			t.Errorf("model %s: planned config %+v != core config %+v", name, job.cfg, want)
		}
	}
}

// TestPlanSweepGrid: the plan expands to the suite × model grid in the
// exact order core's runMatrix enumerates, every model of one benchmark
// shares the benchmark's trace routing key, and the sweep/cell cache keys
// are the very strings the server's own normalisation produces.
func TestPlanSweepGrid(t *testing.T) {
	plan, err := PlanSweep(api.SweepRequest{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	benches := suite.Names()
	models := []string{"queue", "tts", "wo"}
	if want := len(benches) * len(models); len(plan.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(plan.Cells), want)
	}
	job, err := normalizeSweep(api.SweepRequest{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Key != job.key {
		t.Errorf("plan key %q != server sweep key %q", plan.Key, job.key)
	}
	if plan.Params.Scale != 0.05 || plan.Params.Seed != 7 || plan.Params.NCPU != 0 {
		t.Errorf("plan params = %+v, want scale 0.05 seed 7 ncpu 0", plan.Params)
	}
	i := 0
	for _, b := range benches {
		var route *SimPlan
		for _, m := range models {
			cell := plan.Cells[i]
			i++
			if cell.Bench != b || cell.Model != m {
				t.Fatalf("cell %d = %s/%s, want %s/%s", i-1, cell.Bench, cell.Model, b, m)
			}
			// The cell's key must equal the sim key the backend itself
			// would derive for the forwarded request.
			sj, err := normalizeSim(cell.Plan.Request)
			if err != nil {
				t.Fatal(err)
			}
			if cell.Plan.Key != sj.key {
				t.Errorf("cell %s/%s key %q != normalised key %q", b, m, cell.Plan.Key, sj.key)
			}
			if route == nil {
				p := cell.Plan
				route = &p
			} else if cell.Plan.Route != route.Route {
				t.Errorf("cell %s/%s route %+v != benchmark route %+v — models must stay node-local",
					b, m, cell.Plan.Route, route.Route)
			}
			if cell.Plan.Route.Workload != b {
				t.Errorf("cell %s/%s route workload = %q", b, m, cell.Plan.Route.Workload)
			}
		}
	}
}

// TestStoreSharedBetweenServers: the L2 seam. A sim and a sweep computed
// by one server are served by a second server over the same store
// directory as "store", payload-identical, without running anything.
func TestStoreSharedBetweenServers(t *testing.T) {
	disk, err := store.OpenDisk(filepath.Join(t.TempDir(), "l2"))
	if err != nil {
		t.Fatal(err)
	}
	newSrv := func() (*Server, *httptest.Server) {
		s := New(Config{Workers: 2, Store: disk})
		t.Cleanup(s.Close)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return s, ts
	}
	_, tsA := newSrv()
	_, tsB := newSrv()

	simBody := `{"bench":"Qsort","scale":0.01,"seed":3}`
	a, resp := postSim(t, tsA, simBody)
	if resp == nil || resp.StatusCode != http.StatusOK || a.Served != "run" {
		t.Fatalf("server A: served %q status %v", a.Served, resp)
	}
	b, _ := postSim(t, tsB, simBody)
	if b.Served != "store" {
		t.Fatalf("server B served = %q, want store", b.Served)
	}
	aj, _ := json.Marshal(a.SimPayload)
	bj, _ := json.Marshal(b.SimPayload)
	if string(aj) != string(bj) {
		t.Errorf("payloads differ:\nA: %s\nB: %s", aj, bj)
	}
	// Promotion into L1: the next identical request on B is a cache hit.
	again, _ := postSim(t, tsB, simBody)
	if again.Served != "cache" {
		t.Errorf("server B repeat served = %q, want cache (store hit should promote)", again.Served)
	}

	sweepBody := `{"scale":0.01,"seed":3,"only":["Qsort"]}`
	postSweep := func(ts *httptest.Server) SweepResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(sweepBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status %d: %s", resp.StatusCode, raw)
		}
		var out SweepResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	sa := postSweep(tsA)
	if sa.Served != "run" {
		t.Fatalf("sweep on A served = %q, want run", sa.Served)
	}
	sb := postSweep(tsB)
	if sb.Served != "store" {
		t.Fatalf("sweep on B served = %q, want store", sb.Served)
	}
}

// TestTenantCounters: X-Tenant headers become bounded per-tenant request
// counters on /metrics; hostile header values are sanitised.
func TestTenantCounters(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(tenant string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sim",
			strings.NewReader(`{"bench":"Qsort","scale":0.01,"seed":3}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(api.HeaderTenant, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	post("acme")
	post("acme")
	post("Evil Tenant/../{}")
	post("") // no header: counted nowhere

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if got := doc.Counters["tenant_requests_acme"]; got != 2 {
		t.Errorf("tenant_requests_acme = %d, want 2", got)
	}
	if got := doc.Counters["tenant_requests_evil_tenant______"]; got != 1 {
		for k := range doc.Counters {
			if strings.HasPrefix(k, "tenant_requests_") {
				t.Logf("counter %q", k)
			}
		}
		t.Errorf("sanitised tenant counter = %d, want 1", got)
	}
	for k := range doc.Counters {
		if strings.HasPrefix(k, "tenant_requests_") && k != "tenant_requests_acme" && k != "tenant_requests_evil_tenant______" {
			t.Errorf("unexpected tenant counter %q", k)
		}
	}
}

// TestSanitizeTenant pins the slug rules: lowercase, [a-z0-9_-] only,
// 32-byte cap.
func TestSanitizeTenant(t *testing.T) {
	cases := map[string]string{
		"":                      "",
		"  ":                    "",
		"Acme":                  "acme",
		"a b":                   "a_b",
		"ü":                     "_", // one rune, one replacement
		"tenant-1":              "tenant-1",
		strings.Repeat("x", 50): strings.Repeat("x", 32),
	}
	for in, want := range cases {
		if got := sanitizeTenant(in); got != want {
			t.Errorf("sanitizeTenant(%q) = %q, want %q", in, got, want)
		}
	}
}
