package server

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"syncsim/internal/machine"
)

// watchJob arms the per-job liveness watchdog: the returned context
// carries a machine.WithHeartbeat callback, so once the simulation loop
// starts beating (one beat per Config.CancelEvery scheduler iterations —
// Result.Sched counts the same iterations), the monitor demands a fresh
// beat every StallTimeout. A job whose heartbeat stalls is aborted through
// its own context with an errWedged cause; the process, the pool, and
// every other job are untouched.
//
// The watchdog only arms after the FIRST beat: queue wait and trace
// generation legitimately produce none, and the job-level timeout already
// bounds those phases.
//
// The returned stop func must be called (normally deferred) to release
// the monitor goroutine.
func (s *Server) watchJob(ctx context.Context) (context.Context, func()) {
	stall := s.cfg.StallTimeout
	if stall <= 0 {
		return ctx, func() {}
	}
	wctx, cancel := context.WithCancelCause(ctx)
	var beats atomic.Uint64
	hctx := machine.WithHeartbeat(wctx, func(uint64) { beats.Add(1) })

	done := make(chan struct{})
	go func() {
		interval := stall / 4
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var last uint64
		var lastBeat time.Time
		for {
			select {
			case <-done:
				return
			case <-wctx.Done():
				return
			case <-tick.C:
				b := beats.Load()
				if b == 0 {
					continue // not armed: simulation has not started beating
				}
				if b != last {
					last, lastBeat = b, time.Now()
					continue
				}
				if time.Since(lastBeat) >= stall {
					s.wedged.Inc()
					cancel(fmt.Errorf("%w (no heartbeat for %v after %d beats)", errWedged, stall, b))
					return
				}
			}
		}
	}()
	return hctx, func() {
		close(done)
		cancel(context.Canceled)
	}
}

// resolveWedged rewrites a cancellation that the watchdog caused back onto
// the errWedged sentinel, so the taxonomy answers 504 (the job is dead,
// not the server) instead of 503.
func resolveWedged(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cause := context.Cause(ctx); cause != nil && errors.Is(cause, errWedged) {
		return fmt.Errorf("%w; run aborted: %v", cause, err)
	}
	return err
}
