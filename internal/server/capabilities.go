package server

import (
	"net/http"

	"syncsim/internal/api"
	"syncsim/internal/core"
	"syncsim/internal/locks"
	"syncsim/internal/machine"
	"syncsim/internal/replay"
	"syncsim/internal/workload/suite"
)

// handleCapabilities serves GET /v1/capabilities: the service's accepted
// vocabulary — benchmarks, machine models, lock algorithms, consistency
// models, schedulers — plus whether a fitted prediction model is loaded.
// Clients (and the chaos soak) drive request generation from this instead
// of hard-coding name lists. It answers even while draining: it is
// metadata, not a job.
func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	resp := api.CapabilitiesResponse{
		Models: []string{
			core.ModelQueue.String(), core.ModelTTS.String(), core.ModelWO.String(),
		},
		Locks: []string{
			locks.Queue.String(), locks.TTS.String(),
			locks.QueueExact.String(), locks.TTSBackoff.String(),
		},
		Consistency: []string{
			machine.SeqConsistent.String(), machine.WeakOrdering.String(),
		},
		// Sourced from the machine's own registry so the advertised set
		// cannot drift from what normalizeSim accepts.
		Schedulers: machine.SchedulerNames(),
		Analyze: &api.AnalyzeCapability{
			Perturbations:    api.Perturbations(),
			DefaultThreshold: replay.DefaultThreshold,
		},
	}
	for _, b := range suite.All() {
		resp.Benchmarks = append(resp.Benchmarks, api.BenchmarkInfo{
			Name: b.Program.Name(),
			NCPU: b.Paper.NCPU,
		})
	}
	if s.predict != nil {
		resp.Predict = &api.PredictCapability{
			Cells:       len(s.predict.Cells),
			MinScale:    s.predict.MinScale(),
			MaxScale:    s.predict.MaxScale(),
			MaxErrBound: s.predict.MaxErrBound(),
			Modes:       []string{api.PredictAnalytic, api.PredictSimulate, api.PredictAuto},
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
