package server

import (
	"context"
	"errors"
)

// errBusy is load shedding: the admission queue is full. Handlers map it
// to 429 with a Retry-After header — a bounded queue that rejects beats an
// unbounded one that grows until the process dies.
var errBusy = errors.New("server at capacity; retry later")

// admission is the bounded two-stage admission queue: at most `workers`
// jobs execute at once, at most `depth` more wait for a slot, and anything
// beyond that is rejected immediately with errBusy. Coalesced requests
// never enter the queue — only the flight leader holds a ticket — so a
// thundering herd of identical requests costs one slot.
type admission struct {
	tickets chan struct{} // total in-system bound: workers + depth
	slots   chan struct{} // running bound: workers
}

func newAdmission(workers, depth int) *admission {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &admission{
		tickets: make(chan struct{}, workers+depth),
		slots:   make(chan struct{}, workers),
	}
}

// acquire claims an execution slot. It fails fast with errBusy when the
// queue is full, and respects ctx (per-job timeout, client disconnect,
// shutdown) while waiting in line.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.tickets <- struct{}{}:
	default:
		return errBusy
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-a.tickets
		return ctx.Err()
	}
}

// release returns the slot and the queue ticket.
func (a *admission) release() {
	<-a.slots
	<-a.tickets
}

// queued returns how many admitted jobs are waiting for a slot.
func (a *admission) queued() int {
	q := len(a.tickets) - len(a.slots)
	if q < 0 {
		q = 0
	}
	return q
}

// running returns how many jobs hold execution slots.
func (a *admission) running() int { return len(a.slots) }
