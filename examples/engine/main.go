// Command engine demonstrates the context-aware API: functional options,
// cancellation, and the run-metrics reports from the concurrent
// experiment engine. Compare examples/quickstart, which uses the older
// struct-based entry points.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"syncsim"
)

func main() {
	// Ctrl-C cancels the run; in-flight simulations stop within a bounded
	// number of simulated cycles.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// A deadline works the same way.
	ctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()

	outs, err := syncsim.RunSuiteCtx(ctx,
		syncsim.WithScale(0.05),
		syncsim.WithOnly("Grav", "Qsort"),
		syncsim.WithModels(syncsim.ModelQueue, syncsim.ModelTTS),
		syncsim.WithWorkers(2),
		syncsim.WithMetrics(),
		syncsim.WithReport(func(r syncsim.SuiteReport) {
			fmt.Printf("\n%s\n", r)
		}),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	for _, out := range outs {
		fmt.Printf("\n%s: %.0f lock pairs/cpu (ideal)\n", out.Name, out.Ideal.LockPairs)
		for _, m := range []syncsim.Model{syncsim.ModelQueue, syncsim.ModelTTS} {
			res := out.Results[m]
			fmt.Printf("  %-8v run-time %9d cycles, utilization %5.1f%%\n",
				m, res.RunTime, 100*res.AvgUtilization())
		}
		if out.Report != nil {
			fmt.Printf("  metrics: %s\n", out.Report)
		}
	}
}
