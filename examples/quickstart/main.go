// Quickstart: generate one of the paper's benchmarks, simulate it on the
// modelled shared-bus multiprocessor, and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"syncsim"
)

func main() {
	// Pick Pdsa: the simulated-annealing Presto program whose scheduler
	// locks make it one of the paper's two high-contention benchmarks.
	bench, err := syncsim.BenchmarkByName("Pdsa")
	if err != nil {
		log.Fatal(err)
	}

	// Run it at 1/10 of the traced length under the paper's baseline
	// machine (sequential consistency, queuing locks).
	out, err := syncsim.RunBenchmark(bench, syncsim.Options{
		Scale:  0.1,
		Seed:   1,
		Models: []syncsim.Model{syncsim.ModelQueue},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %d processors\n", out.Name, out.Ideal.NCPU)
	fmt.Printf("  ideal work:   %.0f cycles per processor\n", out.Ideal.WorkCycles)
	fmt.Printf("  lock pairs:   %.0f per processor (%.0f nested)\n",
		out.Ideal.LockPairs, out.Ideal.NestedLocks)
	fmt.Printf("  locked time:  %.1f%% of ideal execution\n", out.Ideal.PctTime)

	res := out.Results[syncsim.ModelQueue]
	cachePct, lockPct, _ := res.StallBreakdown()
	fmt.Printf("\nsimulated on the shared-bus machine:\n")
	fmt.Printf("  run-time:     %d cycles\n", res.RunTime)
	fmt.Printf("  utilisation:  %.1f%%  (paper: 40.3%%)\n", 100*res.AvgUtilization())
	fmt.Printf("  stall causes: %.1f%% cache miss, %.1f%% lock wait (paper: 10.2 / 89.5)\n",
		cachePct, lockPct)
	fmt.Printf("  waiters at each lock transfer: %.2f of %d processors (paper: 6.18)\n",
		res.Locks.AvgWaitersAtTransfer(), out.Ideal.NCPU)
}
