// Lockstudy reproduces the paper's central comparison (§3.2): how much an
// efficient queuing-lock implementation buys over test&test&set on the
// high-contention benchmarks, and where the T&T&S slowdown comes from.
//
//	go run ./examples/lockstudy [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"

	"syncsim"
)

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale")
	flag.Parse()

	fmt.Println("Queuing locks vs Test&Test&Set (paper §3.2: Grav +8.0%, Pdsa +8.1%)")
	fmt.Println()
	for _, name := range []string{"Grav", "Pdsa", "FullConn", "Qsort"} {
		bench, err := syncsim.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		out, err := syncsim.RunBenchmark(bench, syncsim.Options{
			Scale:  *scale,
			Seed:   1,
			Models: []syncsim.Model{syncsim.ModelQueue, syncsim.ModelTTS},
		})
		if err != nil {
			log.Fatal(err)
		}
		q := out.Results[syncsim.ModelQueue]
		t := out.Results[syncsim.ModelTTS]
		dec, _ := out.Decomposition()
		tp, hp, bp := dec.Percentages()

		fmt.Printf("%-9s queue %9d cycles | tts %9d cycles | %+.1f%%\n",
			name, q.RunTime, t.RunTime, dec.SlowdownPct())
		fmt.Printf("          transfer latency %5.1f vs %4.1f cycles  (paper: 21-25 vs 1.2-1.5)\n",
			t.Locks.AvgTransferTime(), q.Locks.AvgTransferTime())
		fmt.Printf("          bus utilisation  %5.1f%% vs %4.1f%%\n",
			100*t.BusUtilization(), 100*q.BusUtilization())
		if dec.Delta > 0 {
			fmt.Printf("          slowdown breakdown: %.0f%% hand-off, %.0f%% hold inflation, %.0f%% bus\n",
				tp, hp, bp)
		}
		fmt.Println()
	}
}
