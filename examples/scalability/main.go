// Scalability sweeps the processor count for one benchmark and draws an
// ASCII speed-up chart — the paper's implicit question ("assuming a program
// can be parallelized, there are still potential bottlenecks") made visible:
// the Presto programs stop scaling the moment their scheduler lock
// saturates, while the C programs keep going.
//
//	go run ./examples/scalability [-bench Grav] [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"syncsim"
)

func main() {
	bench := flag.String("bench", "Grav", "benchmark name")
	scale := flag.Float64("scale", 0.05, "workload scale")
	flag.Parse()

	b, err := syncsim.BenchmarkByName(*bench)
	if err != nil {
		log.Fatal(err)
	}

	counts := []int{1, 2, 4, 6, 8, 10, 12}
	fmt.Printf("%s speed-up vs processor count (scale %g)\n\n", *bench, *scale)

	var base float64 // single-processor throughput
	for _, n := range counts {
		set, err := b.Program.Generate(syncsim.WorkloadParams{NCPU: n, Scale: *scale, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, err := syncsim.Simulate(set, syncsim.DefaultMachineConfig())
		if err != nil {
			log.Fatal(err)
		}
		// Throughput = total useful work per cycle; speed-up is relative
		// to the single-processor run.
		var work uint64
		for i := range res.CPUs {
			work += res.CPUs[i].WorkCycles
		}
		throughput := float64(work) / float64(res.RunTime)
		if n == 1 {
			base = throughput
		}
		speedup := throughput / base
		bar := strings.Repeat("█", int(speedup*4+0.5))
		fmt.Printf("%2d cpus  %5.2fx  %s\n", n, speedup, bar)
	}
	fmt.Println("\nA perfectly scaling program would add 4 blocks per row.")
}
