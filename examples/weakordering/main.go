// Weakordering reproduces the paper's §4 question: does relaxing the
// memory model from sequential consistency to weak ordering pay off on a
// shared-bus machine? (The paper's answer: no — under 1% on every
// benchmark, because the only benefit is write-miss bypassing and there is
// almost never an uncompleted shared access at a synchronisation point.)
//
//	go run ./examples/weakordering [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"

	"syncsim"
)

func main() {
	scale := flag.Float64("scale", 0.1, "workload scale")
	flag.Parse()

	fmt.Println("Sequential consistency vs weak ordering (paper Table 7: all diffs < 1%)")
	fmt.Println()
	fmt.Printf("%-9s %12s %12s %8s %10s\n", "program", "SC cycles", "WO cycles", "diff %", "write-hit%")
	for _, bench := range syncsim.Benchmarks() {
		out, err := syncsim.RunBenchmark(bench, syncsim.Options{
			Scale:  *scale,
			Seed:   1,
			Models: []syncsim.Model{syncsim.ModelQueue, syncsim.ModelWO},
		})
		if err != nil {
			log.Fatal(err)
		}
		sc := out.Results[syncsim.ModelQueue]
		wo := out.Results[syncsim.ModelWO]
		diff := 100 * (float64(sc.RunTime) - float64(wo.RunTime)) / float64(sc.RunTime)
		fmt.Printf("%-9s %12d %12d %8.2f %9.1f%%\n",
			out.Name, sc.RunTime, wo.RunTime, diff, 100*wo.WriteHitRatio())
	}
	fmt.Println("\nPositive diff = weak ordering faster. The paper concludes the")
	fmt.Println("hardware cost (lockup-free caches, deeper buffers) is not justified")
	fmt.Println("on this class of machine.")
}
