// Customtrace shows the library as a general lock-behaviour laboratory:
// build your own multiprocessor trace with the event API and measure how
// the two lock implementations handle it. The synthetic program here is
// the classic high-contention microbenchmark the earlier literature used
// (Anderson; Graunke & Thakkar): every processor hammers one lock around a
// short critical section.
//
//	go run ./examples/customtrace [-ncpu 12] [-cs 30] [-iters 400]
package main

import (
	"flag"
	"fmt"
	"log"

	"syncsim"
)

func main() {
	ncpu := flag.Int("ncpu", 12, "processors")
	cs := flag.Uint("cs", 30, "critical-section cycles")
	outside := flag.Uint("outside", 60, "cycles between acquisitions")
	iters := flag.Int("iters", 400, "acquisitions per processor")
	flag.Parse()

	const (
		lockID   = 0
		lockAddr = 0xF0000000 // any address works; this mirrors the suite's layout
		counter  = 0x80000000 // shared word updated inside the section
	)

	// Build one identical trace per processor: lock, touch the shared
	// counter, compute, unlock, compute outside.
	cpus := make([][]syncsim.Event, *ncpu)
	for cpu := range cpus {
		var evs []syncsim.Event
		for i := 0; i < *iters; i++ {
			evs = append(evs,
				syncsim.Lock(lockID, lockAddr),
				syncsim.Read(counter),
				syncsim.Exec(uint32(*cs)),
				syncsim.Write(counter),
				syncsim.Unlock(lockID, lockAddr),
				syncsim.Exec(uint32(*outside)),
			)
		}
		cpus[cpu] = evs
	}

	for _, alg := range []syncsim.LockAlgorithm{syncsim.QueueLocks, syncsim.QueueLocksExact, syncsim.TestTestSet, syncsim.TestSetBackoff} {
		cfg := syncsim.DefaultMachineConfig()
		cfg.Lock = alg
		set := syncsim.BufferTraceSet("hammer", cpus)
		res, err := syncsim.Simulate(set, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s run-time %9d cycles, util %5.1f%%, waiters %.2f, transfer %5.1f cycles, bus %4.1f%%\n",
			alg, res.RunTime, 100*res.AvgUtilization(),
			res.Locks.AvgWaitersAtTransfer(), res.Locks.AvgTransferTime(),
			100*res.BusUtilization())
	}
	fmt.Println("\nWith every processor spinning on one lock, the queuing scheme's")
	fmt.Println("constant-time hand-off beats test&test&set's invalidation flurry —")
	fmt.Println("the effect the paper quantifies on real programs instead.")
}
