// Benchmarks that regenerate every table of the paper's evaluation, one
// testing.B benchmark per table, plus the ablations discussed in the text
// (§2.1: bus/memory cycle times; §4.2: cache-bus buffer depth).
//
// Each benchmark reports the table's headline quantities through
// b.ReportMetric, so `go test -bench=.` doubles as a compact reproduction
// log. benchScale keeps iterations fast; intensive metrics (utilisation,
// waiters, hold times, percentages) are scale-invariant and directly
// comparable with the paper.
package syncsim

import (
	"bytes"
	"fmt"
	"testing"

	"syncsim/internal/core"
	"syncsim/internal/locks"
	"syncsim/internal/machine"
	"syncsim/internal/stats"
	"syncsim/internal/trace"
	"syncsim/internal/workload"
	"syncsim/internal/workload/addr"
	"syncsim/internal/workload/suite"
)

const benchScale = 0.05

// genOnce generates a benchmark trace once per process and replays it.
var genCache = map[string]*trace.Set{}

func benchTrace(b *testing.B, name string) *trace.Set {
	b.Helper()
	if set, ok := genCache[name]; ok {
		if err := trace.Reset(set); err != nil {
			b.Fatal(err)
		}
		return set
	}
	bench, err := suite.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	set, err := bench.Program.Generate(workload.Params{Scale: benchScale, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	genCache[name] = set
	return set
}

func simulate(b *testing.B, name string, model core.Model) *machine.Result {
	b.Helper()
	set := benchTrace(b, name)
	if err := trace.Reset(set); err != nil {
		b.Fatal(err)
	}
	res, err := machine.Run(set, model.MachineConfig(machine.DefaultConfig()))
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1IdealStats regenerates Table 1: the ideal per-processor
// work and reference statistics of every benchmark.
func BenchmarkTable1IdealStats(b *testing.B) {
	for _, name := range suite.Names() {
		b.Run(name, func(b *testing.B) {
			var s trace.Summary
			for i := 0; i < b.N; i++ {
				set := benchTrace(b, name)
				s = trace.AnalyzeIdeal(set, addr.Shared).Summarize()
			}
			b.ReportMetric(s.WorkCycles/1000/benchScale, "workKcyc/cpu")
			b.ReportMetric(s.Refs/1000/benchScale, "refsK/cpu")
			b.ReportMetric(s.SharedRefs/1000/benchScale, "sharedK/cpu")
		})
	}
}

// BenchmarkTable2IdealLocks regenerates Table 2: the ideal lock statistics.
func BenchmarkTable2IdealLocks(b *testing.B) {
	for _, name := range suite.Names() {
		b.Run(name, func(b *testing.B) {
			var s trace.Summary
			for i := 0; i < b.N; i++ {
				set := benchTrace(b, name)
				s = trace.AnalyzeIdeal(set, addr.Shared).Summarize()
			}
			b.ReportMetric(s.LockPairs/benchScale, "pairs/cpu")
			b.ReportMetric(s.NestedLocks/benchScale, "nested/cpu")
			b.ReportMetric(s.AvgHeld, "heldCycles")
			b.ReportMetric(s.PctTime, "pctLocked")
		})
	}
}

func runtimeBench(b *testing.B, model core.Model) {
	for _, name := range suite.Names() {
		if model == core.ModelTTS && name == "Topopt" {
			continue // the paper's Table 5 omits the lock-free program
		}
		b.Run(name, func(b *testing.B) {
			var res *machine.Result
			for i := 0; i < b.N; i++ {
				res = simulate(b, name, model)
			}
			cachePct, lockPct, _ := res.StallBreakdown()
			b.ReportMetric(float64(res.RunTime), "cycles")
			b.ReportMetric(100*res.AvgUtilization(), "util%")
			b.ReportMetric(cachePct, "cacheStall%")
			b.ReportMetric(lockPct, "lockStall%")
		})
	}
}

func contentionBench(b *testing.B, model core.Model) {
	for _, name := range suite.Names() {
		if name == "Topopt" {
			continue // no locks
		}
		b.Run(name, func(b *testing.B) {
			var res *machine.Result
			for i := 0; i < b.N; i++ {
				res = simulate(b, name, model)
			}
			b.ReportMetric(res.Locks.AvgHold(), "heldCycles")
			b.ReportMetric(float64(res.Locks.Transfers)/benchScale, "transfers")
			b.ReportMetric(res.Locks.AvgWaitersAtTransfer(), "waiters")
			b.ReportMetric(res.Locks.AvgTransferTime(), "xferCycles")
		})
	}
}

// BenchmarkTable3RuntimeQueue regenerates Table 3 (queuing locks, SC).
func BenchmarkTable3RuntimeQueue(b *testing.B) { runtimeBench(b, core.ModelQueue) }

// BenchmarkTable4ContentionQueue regenerates Table 4.
func BenchmarkTable4ContentionQueue(b *testing.B) { contentionBench(b, core.ModelQueue) }

// BenchmarkTable5RuntimeTTS regenerates Table 5 (test&test&set).
func BenchmarkTable5RuntimeTTS(b *testing.B) { runtimeBench(b, core.ModelTTS) }

// BenchmarkTable6ContentionTTS regenerates Table 6.
func BenchmarkTable6ContentionTTS(b *testing.B) { contentionBench(b, core.ModelTTS) }

// BenchmarkTable7WeakOrdering regenerates Table 7: weak-ordering run-times
// and their difference against the sequentially consistent baseline.
func BenchmarkTable7WeakOrdering(b *testing.B) {
	for _, name := range suite.Names() {
		b.Run(name, func(b *testing.B) {
			var sc, wo *machine.Result
			for i := 0; i < b.N; i++ {
				sc = simulate(b, name, core.ModelQueue)
				wo = simulate(b, name, core.ModelWO)
			}
			b.ReportMetric(float64(wo.RunTime), "cycles")
			b.ReportMetric(100*wo.AvgUtilization(), "util%")
			b.ReportMetric(stats.DiffPct(sc, wo), "diff%")
			b.ReportMetric(100*wo.WriteHitRatio(), "writeHit%")
		})
	}
}

// BenchmarkTable8ContentionWO regenerates Table 8.
func BenchmarkTable8ContentionWO(b *testing.B) { contentionBench(b, core.ModelWO) }

// BenchmarkSlowdownDecomposition regenerates the §3.2 analysis for the two
// high-contention programs.
func BenchmarkSlowdownDecomposition(b *testing.B) {
	for _, name := range []string{"Grav", "Pdsa"} {
		b.Run(name, func(b *testing.B) {
			var dec stats.Decomposition
			for i := 0; i < b.N; i++ {
				q := simulate(b, name, core.ModelQueue)
				t := simulate(b, name, core.ModelTTS)
				dec = stats.Decompose(q, t)
			}
			tp, hp, bp := dec.Percentages()
			b.ReportMetric(dec.SlowdownPct(), "slowdown%")
			b.ReportMetric(tp, "transfer%")
			b.ReportMetric(hp, "hold%")
			b.ReportMetric(bp, "bus%")
		})
	}
}

// BenchmarkAblationBufferDepth sweeps the cache-bus buffer depth (§4.2:
// "it is debatable whether cache-bus buffers should be as deep as those we
// simulated") under weak ordering, where the buffer matters most.
func BenchmarkAblationBufferDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var res *machine.Result
			for i := 0; i < b.N; i++ {
				set := benchTrace(b, "Qsort")
				if err := trace.Reset(set); err != nil {
					b.Fatal(err)
				}
				cfg := core.ModelWO.MachineConfig(machine.DefaultConfig())
				cfg.BufDepth = depth
				var err error
				res, err = machine.Run(set, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.RunTime), "cycles")
			b.ReportMetric(100*res.AvgUtilization(), "util%")
		})
	}
}

// BenchmarkAblationLatency sweeps memory access time (§2.1: the authors
// varied bus and memory cycle times without changing the trends; §4.2: a
// higher miss penalty would make weak ordering worthwhile).
func BenchmarkAblationLatency(b *testing.B) {
	for _, mem := range []uint64{3, 6, 12, 24} {
		b.Run(fmt.Sprintf("mem=%d", mem), func(b *testing.B) {
			var sc, wo *machine.Result
			for i := 0; i < b.N; i++ {
				base := machine.DefaultConfig()
				base.Memory.AccessTime = mem

				set := benchTrace(b, "Qsort")
				var err error
				sc, err = machine.Run(set, core.ModelQueue.MachineConfig(base))
				if err != nil {
					b.Fatal(err)
				}
				set = benchTrace(b, "Qsort")
				wo, err = machine.Run(set, core.ModelWO.MachineConfig(base))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sc.RunTime), "scCycles")
			b.ReportMetric(stats.DiffPct(sc, wo), "woGain%")
		})
	}
}

// BenchmarkAblationLockAlgorithm compares all four implemented lock
// algorithms on the highest-contention benchmark. queue vs queue-exact
// answers the paper's §2.4 open question: how much do the approximation's
// two omitted bus transactions matter?
func BenchmarkAblationLockAlgorithm(b *testing.B) {
	for _, alg := range []locks.Algorithm{locks.Queue, locks.QueueExact, locks.TTS, locks.TTSBackoff} {
		b.Run(alg.String(), func(b *testing.B) {
			var res *machine.Result
			for i := 0; i < b.N; i++ {
				set := benchTrace(b, "Grav")
				if err := trace.Reset(set); err != nil {
					b.Fatal(err)
				}
				cfg := machine.DefaultConfig()
				cfg.Lock = alg
				var err error
				res, err = machine.Run(set, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.RunTime), "cycles")
			b.ReportMetric(100*res.AvgUtilization(), "util%")
			b.ReportMetric(res.Locks.AvgTransferTime(), "xferCycles")
			b.ReportMetric(100*res.BusUtilization(), "bus%")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed in simulated
// cycles and trace events per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	set := benchTrace(b, "Pverify")
	var events int64
	for _, src := range set.Sources {
		for {
			if _, ok := src.Next(); !ok {
				break
			}
			events++
		}
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		if err := trace.Reset(set); err != nil {
			b.Fatal(err)
		}
		res, err := machine.Run(set, machine.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.RunTime
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "simCycles/s")
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkCheckerOverhead measures what the runtime invariant checker
// (machine.Config.Check) costs on a representative contended workload: the
// "off" and "on" sub-benchmarks simulate the same trace, so their ratio is
// the checker's overhead.
func BenchmarkCheckerOverhead(b *testing.B) {
	for _, mode := range []struct {
		name  string
		check bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := machine.DefaultConfig()
			cfg.Check = mode.check
			var cycles uint64
			for i := 0; i < b.N; i++ {
				set := benchTrace(b, "Grav")
				res, err := machine.Run(set, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.RunTime
			}
			b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "simCycles/s")
		})
	}
}

// BenchmarkGeneration measures workload generation speed.
func BenchmarkGeneration(b *testing.B) {
	for _, bench := range suite.All() {
		b.Run(bench.Program.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Program.Generate(workload.Params{Scale: benchScale, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceCodec measures the binary container round trip.
func BenchmarkTraceCodec(b *testing.B) {
	set := benchTrace(b, "Pdsa")
	cpus := make([][]trace.Event, set.NCPU())
	for i, src := range set.Sources {
		cpus[i] = trace.Drain(src)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := trace.Encode(&buf, "bench", cpus); err != nil {
			b.Fatal(err)
		}
		if _, _, err := trace.Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkMachineRun times machine.Run alone — no trace generation, no
// ideal analysis — on every benchmark × machine model under the default
// wakeup-calendar scheduler. This is the suite the CI benchmark regression
// gate watches (alongside BenchmarkCheckerOverhead).
func BenchmarkMachineRun(b *testing.B) {
	for _, name := range suite.Names() {
		for _, model := range []core.Model{core.ModelQueue, core.ModelTTS, core.ModelWO} {
			b.Run(fmt.Sprintf("%s/%s", name, model), func(b *testing.B) {
				var cycles uint64
				for i := 0; i < b.N; i++ {
					set := benchTrace(b, name)
					res, err := machine.Run(set, model.MachineConfig(machine.DefaultConfig()))
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.RunTime
				}
				b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "simCycles/s")
			})
		}
	}
}

// BenchmarkMachineRunParallel is BenchmarkMachineRun under the speculative
// parallel scheduler with four workers — the configuration BENCH_pr7.json
// records and the CI regression gate watches. On a single-CPU host the
// worker count clamps to GOMAXPROCS and the speculation runs inline; the
// speedup over BenchmarkMachineRun is then purely algorithmic (leased
// stretches skip the per-visited-cycle calendar machinery).
func BenchmarkMachineRunParallel(b *testing.B) {
	for _, name := range suite.Names() {
		for _, model := range []core.Model{core.ModelQueue, core.ModelTTS, core.ModelWO} {
			b.Run(fmt.Sprintf("%s/%s", name, model), func(b *testing.B) {
				cfg := model.MachineConfig(machine.DefaultConfig())
				cfg.Sched = machine.SchedParallel
				cfg.Workers = 4
				var cycles uint64
				for i := 0; i < b.N; i++ {
					set := benchTrace(b, name)
					res, err := machine.Run(set, cfg)
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.RunTime
				}
				b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "simCycles/s")
			})
		}
	}
}
